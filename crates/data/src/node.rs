//! Node-task datasets (link prediction, node classification).
//!
//! The paper evaluates on ACM, Citeseer, Cora, DBLP, Wiki and Emails.
//! Those exact datasets are not available offline, so each is replaced by
//! a seeded planted-partition generator matched to the published
//! statistics (Table 6 of the paper): node count, edge count, class count
//! and feature dimension. Planted partitions carry exactly the micro
//! (edge-level) and meso (community-level) semantics that AdamGNN's
//! multi-grained pooling is designed to exploit, so relative model
//! ordering is preserved even though absolute accuracies differ.

use mg_graph::Topology;
use mg_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The six node-task benchmarks of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NodeDatasetKind {
    Acm,
    Citeseer,
    Cora,
    Emails,
    Dblp,
    Wiki,
}

impl NodeDatasetKind {
    /// All six, in the paper's Table 2 column order.
    pub fn all() -> [NodeDatasetKind; 6] {
        use NodeDatasetKind::*;
        [Acm, Citeseer, Cora, Emails, Dblp, Wiki]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            NodeDatasetKind::Acm => "ACM",
            NodeDatasetKind::Citeseer => "Citeseer",
            NodeDatasetKind::Cora => "Cora",
            NodeDatasetKind::Emails => "Emails",
            NodeDatasetKind::Dblp => "DBLP",
            NodeDatasetKind::Wiki => "Wiki",
        }
    }

    /// Published statistics from Table 6:
    /// `(nodes, edges, feature_dim (0 = featureless), classes)`.
    pub fn paper_stats(&self) -> (usize, usize, usize, usize) {
        match self {
            NodeDatasetKind::Acm => (3025, 13128, 1870, 3),
            NodeDatasetKind::Citeseer => (3327, 4552, 3703, 6),
            NodeDatasetKind::Cora => (2708, 5278, 1433, 7),
            NodeDatasetKind::Emails => (799, 10182, 0, 18),
            NodeDatasetKind::Dblp => (4057, 3528, 334, 4),
            NodeDatasetKind::Wiki => (2405, 12178, 4973, 17),
        }
    }

    /// Edge-budget split `(intra_cell, intra_class)`; the remainder is
    /// uniform noise. Cells are small dense groups *orthogonal* to the
    /// class labels (the paper's "research institutes" vs "topics"):
    /// they carry the link-prediction signal, while class homophily and
    /// feature signal control node-classification difficulty.
    fn edge_mix(&self) -> (f64, f64) {
        match self {
            NodeDatasetKind::Acm => (0.45, 0.30),
            NodeDatasetKind::Citeseer => (0.40, 0.26),
            NodeDatasetKind::Cora => (0.42, 0.40),
            NodeDatasetKind::Emails => (0.40, 0.55),
            NodeDatasetKind::Dblp => (0.42, 0.38),
            NodeDatasetKind::Wiki => (0.25, 0.16),
        }
    }

    /// Probability that an active feature lands in the node's own class
    /// block. Tuned per dataset so a plain GCN reaches roughly the
    /// accuracy the paper reports for it (ACM easiest, Wiki hardest).
    fn feature_signal(&self) -> f64 {
        match self {
            NodeDatasetKind::Acm => 0.55,
            NodeDatasetKind::Citeseer => 0.35,
            NodeDatasetKind::Cora => 0.78,
            NodeDatasetKind::Dblp => 0.68,
            NodeDatasetKind::Wiki => 0.12,
            NodeDatasetKind::Emails => 0.0, // featureless
        }
    }
}

/// An attributed graph with node labels for node-wise tasks.
#[derive(Clone, Debug)]
pub struct NodeDataset {
    pub name: String,
    pub graph: Topology,
    /// Dense `n x d` feature matrix (one-hot degree features when the
    /// source dataset is featureless).
    pub features: Matrix,
    pub labels: Vec<usize>,
    pub num_classes: usize,
}

impl NodeDataset {
    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.graph.n()
    }

    /// Feature dimensionality.
    pub fn feat_dim(&self) -> usize {
        self.features.cols()
    }
}

/// Generation options.
#[derive(Clone, Copy, Debug)]
pub struct NodeGenConfig {
    /// Scale factor on node count and edge count (1.0 = paper size).
    pub scale: f64,
    /// Cap on the feature dimension (the published bag-of-words dims make
    /// dense CPU training needlessly slow; the class-signal structure is
    /// preserved at lower width). `0` disables the cap.
    pub max_feat_dim: usize,
    pub seed: u64,
}

impl Default for NodeGenConfig {
    fn default() -> Self {
        NodeGenConfig {
            scale: 1.0,
            max_feat_dim: 512,
            seed: 42,
        }
    }
}

impl NodeGenConfig {
    /// Config with a given scale, default elsewhere.
    pub fn with_scale(scale: f64) -> Self {
        NodeGenConfig {
            scale,
            ..Default::default()
        }
    }
}

/// Generate the analogue of one of the paper's node-task datasets.
pub fn make_node_dataset(kind: NodeDatasetKind, cfg: &NodeGenConfig) -> NodeDataset {
    let (n0, m0, d0, classes) = kind.paper_stats();
    let n = ((n0 as f64 * cfg.scale) as usize).max(classes * 8);
    let m = ((m0 as f64 * cfg.scale) as usize).max(n);
    let feat_dim = if d0 == 0 {
        0
    } else if cfg.max_feat_dim > 0 {
        d0.min(cfg.max_feat_dim)
    } else {
        d0
    };
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ fxhash(kind.name()));
    let labels = balanced_labels(n, classes, &mut rng);
    let (f_cell, f_class) = kind.edge_mix();
    let (graph, cell_of) = planted_partition(n, m, &labels, classes, f_cell, f_class, &mut rng);
    let features = if feat_dim == 0 {
        degree_onehot_features(&graph, 32)
    } else {
        bow_features(
            &labels,
            &cell_of,
            classes,
            feat_dim,
            kind.feature_signal(),
            &mut rng,
        )
    };
    NodeDataset {
        name: kind.name().to_string(),
        graph,
        features,
        labels,
        num_classes: classes,
    }
}

/// Deterministic string hash to decorrelate per-dataset seeds.
fn fxhash(s: &str) -> u64 {
    s.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100000001b3)
    })
}

/// Roughly balanced class assignment with mild size skew (real citation
/// datasets are not perfectly balanced).
fn balanced_labels(n: usize, classes: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut weights: Vec<f64> = (0..classes).map(|_| rng.random_range(0.7..1.3)).collect();
    let total: f64 = weights.iter().sum();
    for w in &mut weights {
        *w /= total;
    }
    let mut labels = Vec::with_capacity(n);
    for (c, &w) in weights.iter().enumerate() {
        let count = (w * n as f64).round() as usize;
        labels.extend(std::iter::repeat_n(c, count));
    }
    while labels.len() < n {
        labels.push(rng.random_range(0..classes));
    }
    labels.truncate(n);
    // deterministic shuffle
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        labels.swap(i, j);
    }
    labels
}

/// Planted graph with two orthogonal structures: dense micro-cells
/// (triadic-closure-like clusters, mixed classes) and class homophily.
/// A spanning backbone keeps the graph connected, as in the citation
/// benchmarks' giant components.
fn planted_partition(
    n: usize,
    m: usize,
    labels: &[usize],
    classes: usize,
    f_cell: f64,
    f_class: f64,
    rng: &mut StdRng,
) -> (Topology, Vec<usize>) {
    let mut by_class: Vec<Vec<u32>> = vec![Vec::new(); classes];
    for (i, &c) in labels.iter().enumerate() {
        by_class[c].push(i as u32);
    }
    // Dense micro-cells, sized with graph density so dense graphs
    // (Emails) get proportionally larger cells. Most cells are
    // class-pure ("research groups within a topic") — this is the
    // meso-level label signal multi-grained models exploit — while a
    // fraction mixes classes, keeping cell membership from being a
    // perfect proxy for the label.
    let cell_size = (2 * m / n).clamp(8, 30);
    let pure_fraction = 0.7;
    let mut order: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        order.swap(i, j);
    }
    let mut cells: Vec<Vec<u32>> = Vec::new();
    let mut leftover: Vec<u32> = Vec::new();
    for members in &by_class {
        // shuffle within the class (by_class is index-ordered)
        let mut ms = members.clone();
        for i in (1..ms.len()).rev() {
            let j = rng.random_range(0..=i);
            ms.swap(i, j);
        }
        let n_pure = (pure_fraction * ms.len() as f64) as usize;
        for chunk in ms[..n_pure].chunks(cell_size) {
            cells.push(chunk.to_vec());
        }
        leftover.extend_from_slice(&ms[n_pure..]);
    }
    for i in (1..leftover.len()).rev() {
        let j = rng.random_range(0..=i);
        leftover.swap(i, j);
    }
    for chunk in leftover.chunks(cell_size) {
        cells.push(chunk.to_vec());
    }
    let mut cell_of = vec![0usize; n];
    for (ci, cell) in cells.iter().enumerate() {
        for &node in cell {
            cell_of[node as usize] = ci;
        }
    }
    let mut edges: std::collections::BTreeSet<(u32, u32)> = std::collections::BTreeSet::new();
    let push = |edges: &mut std::collections::BTreeSet<(u32, u32)>, u: u32, v: u32| {
        if u != v {
            edges.insert(if u < v { (u, v) } else { (v, u) });
        }
    };
    // dense cells (link-prediction signal)
    let target_cell = (f_cell * m as f64) as usize;
    let mut guard = 0usize;
    while edges.len() < target_cell && guard < 60 * m {
        guard += 1;
        let cell = &cells[rng.random_range(0..cells.len())];
        if cell.len() < 2 {
            continue;
        }
        let u = cell[rng.random_range(0..cell.len())];
        let v = cell[rng.random_range(0..cell.len())];
        push(&mut edges, u, v);
    }
    // class homophily (node-classification signal)
    let target_class = target_cell + (f_class * m as f64) as usize;
    guard = 0;
    while edges.len() < target_class && guard < 60 * m {
        guard += 1;
        let c = rng.random_range(0..classes);
        if by_class[c].len() < 2 {
            continue;
        }
        let u = by_class[c][rng.random_range(0..by_class[c].len())];
        let v = by_class[c][rng.random_range(0..by_class[c].len())];
        push(&mut edges, u, v);
    }
    // uniform noise
    guard = 0;
    while edges.len() < m && guard < 60 * m {
        guard += 1;
        let u = rng.random_range(0..n as u32);
        let v = rng.random_range(0..n as u32);
        push(&mut edges, u, v);
    }
    // finally, connect remaining components with a minimal random chain
    // (class-agnostic, so connectivity itself leaks no label information)
    let mut list: Vec<(u32, u32)> = edges.iter().copied().collect();
    let comp = Topology::from_edges(n, &list).connected_components();
    let num_comp = comp.iter().max().map_or(0, |c| c + 1);
    if num_comp > 1 {
        let mut reps = vec![u32::MAX; num_comp];
        for &node in &order {
            let c = comp[node as usize];
            if reps[c] == u32::MAX {
                reps[c] = node;
            }
        }
        for w in reps.windows(2) {
            list.push((w[0], w[1]));
        }
    }
    (Topology::from_edges(n, &list), cell_of)
}

/// Sparse bag-of-words-style features: each class owns a block of topic
/// dimensions; a node activates mostly its own class's topics.
fn bow_features(
    labels: &[usize],
    cell_of: &[usize],
    classes: usize,
    dim: usize,
    signal: f64,
    rng: &mut StdRng,
) -> Matrix {
    let n = labels.len();
    let block = (dim / classes).max(1);
    let active = (dim / 30).clamp(3, 20);
    let mut feats = Matrix::zeros(n, dim);
    for i in 0..n {
        let c = labels[i];
        let lo = (c * block).min(dim - 1);
        let hi = ((c + 1) * block).min(dim);
        for _ in 0..active {
            let j = if rng.random::<f64>() < signal && hi > lo {
                rng.random_range(lo..hi)
            } else {
                rng.random_range(0..dim)
            };
            feats[(i, j)] = 1.0;
        }
        // cell signature words: neighbours share vocabulary (the
        // feature-borne link-prediction signal of real citation data)
        let sig_base = (cell_of[i].wrapping_mul(2654435761)) % dim;
        for t in 0..4usize {
            if rng.random::<f64>() < 0.9 {
                feats[(i, (sig_base + t * 7) % dim)] = 1.0;
            }
        }
    }
    feats
}

/// One-hot degree-bucket features for featureless graphs (Emails), the
/// standard substitute used by GIN and friends.
fn degree_onehot_features(g: &Topology, buckets: usize) -> Matrix {
    let n = g.n();
    let mut feats = Matrix::zeros(n, buckets);
    for i in 0..n {
        let b = g.degree(i).min(buckets - 1);
        feats[(i, b)] = 1.0;
    }
    feats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(kind: NodeDatasetKind) -> NodeDataset {
        make_node_dataset(
            kind,
            &NodeGenConfig {
                scale: 0.05,
                max_feat_dim: 64,
                seed: 7,
            },
        )
    }

    #[test]
    fn all_kinds_generate() {
        for kind in NodeDatasetKind::all() {
            let ds = tiny(kind);
            assert!(ds.n() > 0, "{}", ds.name);
            assert_eq!(ds.labels.len(), ds.n());
            assert!(ds.labels.iter().all(|&c| c < ds.num_classes));
            assert_eq!(ds.features.rows(), ds.n());
            assert!(ds.feat_dim() > 0);
        }
    }

    #[test]
    fn full_scale_matches_paper_stats_approximately() {
        let ds = make_node_dataset(
            NodeDatasetKind::Cora,
            &NodeGenConfig {
                scale: 1.0,
                max_feat_dim: 0,
                seed: 1,
            },
        );
        let (n0, m0, d0, c0) = NodeDatasetKind::Cora.paper_stats();
        assert_eq!(ds.n(), n0);
        assert_eq!(ds.feat_dim(), d0);
        assert_eq!(ds.num_classes, c0);
        let m = ds.graph.num_edges() as f64;
        assert!((m - m0 as f64).abs() / (m0 as f64) < 0.05, "edges = {m}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = tiny(NodeDatasetKind::Citeseer);
        let b = tiny(NodeDatasetKind::Citeseer);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.graph.edges(), b.graph.edges());
        assert_eq!(a.features, b.features);
    }

    #[test]
    fn different_seeds_differ() {
        let a = make_node_dataset(
            NodeDatasetKind::Cora,
            &NodeGenConfig {
                scale: 0.05,
                max_feat_dim: 64,
                seed: 1,
            },
        );
        let b = make_node_dataset(
            NodeDatasetKind::Cora,
            &NodeGenConfig {
                scale: 0.05,
                max_feat_dim: 64,
                seed: 2,
            },
        );
        assert_ne!(a.graph.edges(), b.graph.edges());
    }

    #[test]
    fn homophily_is_planted() {
        let ds = tiny(NodeDatasetKind::Acm);
        let intra = ds
            .graph
            .edges()
            .iter()
            .filter(|&&(u, v)| ds.labels[u as usize] == ds.labels[v as usize])
            .count();
        let frac = intra as f64 / ds.graph.num_edges() as f64;
        assert!(frac > 0.6, "intra fraction = {frac}");
    }

    #[test]
    fn graph_is_connected() {
        let ds = tiny(NodeDatasetKind::Dblp);
        assert_eq!(ds.graph.num_components(), 1);
    }

    #[test]
    fn emails_uses_degree_features() {
        let ds = tiny(NodeDatasetKind::Emails);
        // one-hot: every row sums to exactly 1
        for i in 0..ds.n() {
            let s: f64 = ds.features.row(i).iter().sum();
            assert_eq!(s, 1.0);
        }
    }

    #[test]
    fn feature_blocks_correlate_with_class() {
        let ds = tiny(NodeDatasetKind::Cora);
        let dim = ds.feat_dim();
        let block = dim / ds.num_classes;
        // a node's own-class block should hold most of its active features
        let mut own = 0.0;
        let mut total = 0.0;
        for i in 0..ds.n() {
            let c = ds.labels[i];
            for j in 0..dim {
                if ds.features[(i, j)] > 0.0 {
                    total += 1.0;
                    if j >= c * block && j < (c + 1) * block {
                        own += 1.0;
                    }
                }
            }
        }
        // signal for Cora is 0.35 of draws + 1/classes of the uniform rest
        assert!(own / total > 0.3, "own-block fraction = {}", own / total);
    }
}

//! Property-based tests for dataset generation, splits and the
//! neighbor sampler.

use mg_data::{
    make_graph_dataset, make_node_dataset, sample_non_edges, GraphDatasetKind, GraphGenConfig,
    LinkSplit, NeighborSampler, NodeDatasetKind, NodeGenConfig, Split,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn node_dataset_invariants(seed in 0u64..1000, scale in 0.05f64..0.15) {
        let cfg = NodeGenConfig { scale, max_feat_dim: 48, seed };
        let ds = make_node_dataset(NodeDatasetKind::Cora, &cfg);
        prop_assert_eq!(ds.labels.len(), ds.n());
        prop_assert!(ds.labels.iter().all(|&c| c < ds.num_classes));
        prop_assert_eq!(ds.features.rows(), ds.n());
        prop_assert!(ds.features.all_finite());
        prop_assert_eq!(ds.graph.num_components(), 1, "generator promises connectivity");
        // every class is inhabited
        for c in 0..ds.num_classes {
            prop_assert!(ds.labels.contains(&c), "empty class {}", c);
        }
    }

    #[test]
    fn graph_dataset_invariants(seed in 0u64..1000) {
        let cfg = GraphGenConfig { scale: 0.02, max_nodes: 40, seed };
        let ds = make_graph_dataset(GraphDatasetKind::Proteins, &cfg);
        prop_assert!(!ds.is_empty());
        for s in &ds.samples {
            prop_assert_eq!(s.features.rows(), s.graph.n());
            prop_assert_eq!(s.features.cols(), ds.feat_dim);
            prop_assert!(s.label < ds.num_classes);
            // one-hot rows
            for i in 0..s.graph.n() {
                let sum: f64 = s.features.row(i).iter().sum();
                prop_assert_eq!(sum, 1.0);
            }
        }
    }

    #[test]
    fn split_partitions_any_size(n in 10usize..500, seed in 0u64..1000) {
        let s = Split::random_80_10_10(n, seed).unwrap();
        prop_assert!(s.is_partition_of(n));
        prop_assert!(!s.train.is_empty());
        prop_assert!(!s.val.is_empty());
        prop_assert!(!s.test.is_empty());
    }

    #[test]
    fn link_split_invariants(seed in 0u64..200) {
        let ds = make_node_dataset(
            NodeDatasetKind::Citeseer,
            &NodeGenConfig { scale: 0.05, max_feat_dim: 32, seed },
        );
        let ls = LinkSplit::new(&ds.graph, seed).unwrap();
        // positive edge sets partition the original edges
        let total = ls.train_pos.len() + ls.val_pos.len() + ls.test_pos.len();
        prop_assert_eq!(total, ds.graph.num_edges());
        // no held-out edge leaks into the training graph
        for &(u, v) in ls.val_pos.iter().chain(&ls.test_pos) {
            prop_assert!(!ls.train_graph.has_edge(u, v));
        }
        // all negatives are genuine non-edges of the *full* graph
        for &(u, v) in ls.val_neg.iter().chain(&ls.test_neg) {
            prop_assert!(!ds.graph.has_edge(u, v));
        }
    }

    #[test]
    fn sampled_subgraph_is_the_induced_subgraph(
        seed in 0u64..200,
        fanout in 2usize..=8,
        n_seeds in 1usize..12,
    ) {
        let ds = make_node_dataset(
            NodeDatasetKind::Cora,
            &NodeGenConfig { scale: 0.05, max_feat_dim: 16, seed },
        );
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
        let seeds: Vec<usize> = (0..n_seeds).map(|_| rng.random_range(0..ds.n())).collect();
        let mut sampler = NeighborSampler::new(ds.n());
        let sub = sampler.sample(&ds.graph, &seeds, &[fanout, fanout], &mut rng);

        // remap round-trip: local ids are distinct globals, all in range
        let mut seen = vec![false; ds.n()];
        for &g in &sub.nodes {
            prop_assert!(g < ds.n());
            prop_assert!(!seen[g], "duplicate global node {} in remap", g);
            seen[g] = true;
        }
        // seeds occupy the remap prefix, deduped in first-seen order
        let mut expect_prefix = Vec::new();
        for &s in &seeds {
            if !expect_prefix.contains(&s) {
                expect_prefix.push(s);
            }
        }
        prop_assert_eq!(&sub.nodes[..sub.num_seeds], &expect_prefix[..]);

        // even with a bounded fanout, the edge set must be exactly the
        // reference induced subgraph over the sampled node set: no
        // phantom edges, no dropped intra-sample edges
        let (reference, _) = ds.graph.induced_subgraph(&sub.nodes);
        let canon = |t: &mg_graph::Topology| {
            let mut e: Vec<(u32, u32)> = t
                .edges()
                .iter()
                .map(|&(u, v)| (u.min(v), u.max(v)))
                .collect();
            e.sort_unstable();
            e
        };
        prop_assert_eq!(canon(&sub.topo), canon(&reference));
        // every local edge maps back to a real global edge
        for &(lu, lv) in sub.topo.edges() {
            prop_assert!(ds.graph.has_edge(sub.nodes[lu as usize], sub.nodes[lv as usize]));
        }
    }

    #[test]
    fn non_edge_sampler_never_returns_edges(seed in 0u64..200) {
        let ds = make_node_dataset(
            NodeDatasetKind::Dblp,
            &NodeGenConfig { scale: 0.05, max_feat_dim: 32, seed },
        );
        let mut rng = StdRng::seed_from_u64(seed);
        for &(u, v) in &sample_non_edges(&ds.graph, 64, &mut rng).unwrap() {
            prop_assert!(!ds.graph.has_edge(u, v));
            prop_assert_ne!(u, v);
        }
    }
}

//! Vendored, dependency-free stand-in for the parts of crates.io
//! `criterion` that this workspace uses (the build environment is
//! offline).
//!
//! Each benchmark runs a short warm-up, then `sample_size` timed samples
//! of an adaptively chosen iteration batch, and reports min / median /
//! mean ns-per-iteration on stdout. If the `MG_BENCH_JSON` environment
//! variable names a file, all results of the process are also appended
//! there as one JSON document (see [`Criterion::write_json_report`]).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One finished measurement.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Benchmark id (function name, possibly group-prefixed).
    pub name: String,
    /// Minimum observed ns per iteration.
    pub min_ns: f64,
    /// Median observed ns per iteration.
    pub median_ns: f64,
    /// Mean observed ns per iteration.
    pub mean_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
}

/// Top-level harness object handed to benchmark functions.
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    results: Vec<Measurement>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up: Duration::from_millis(300),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Set the warm-up duration per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Run one benchmark closure.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            warm_up: self.warm_up,
            result: None,
        };
        f(&mut bencher);
        let m = bencher.finish(name);
        println!(
            "bench {:<44} median {:>12.1} ns/iter  (min {:.1}, mean {:.1}, n={})",
            m.name, m.median_ns, m.min_ns, m.mean_ns, m.samples
        );
        self.results.push(m);
        self
    }

    /// Start a named group; benchmarks inside are prefixed `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            prefix: name.to_string(),
            sample_size: None,
        }
    }

    /// All measurements taken so far.
    pub fn measurements(&self) -> &[Measurement] {
        &self.results
    }

    /// Serialize all measurements as a JSON document.
    pub fn json_report(&self) -> String {
        let entries: Vec<String> = self
            .results
            .iter()
            .map(|m| {
                format!(
                    "    {{\"name\": {}, \"median_ns\": {:.1}, \"min_ns\": {:.1}, \
                     \"mean_ns\": {:.1}, \"samples\": {}}}",
                    json_string(&m.name),
                    m.median_ns,
                    m.min_ns,
                    m.mean_ns,
                    m.samples
                )
            })
            .collect();
        format!(
            "{{\n  \"benchmarks\": [\n{}\n  ]\n}}\n",
            entries.join(",\n")
        )
    }

    /// Write [`Criterion::json_report`] to the path in `MG_BENCH_JSON`,
    /// if that variable is set. Called automatically by
    /// [`criterion_main!`].
    pub fn write_json_report(&self) {
        if let Ok(path) = std::env::var("MG_BENCH_JSON") {
            if !path.is_empty() {
                if let Err(e) = std::fs::write(&path, self.json_report()) {
                    eprintln!("criterion: failed to write {path}: {e}");
                } else {
                    eprintln!("criterion: wrote {path}");
                }
            }
        }
    }
}

/// Escape a string for JSON.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A benchmark group sharing a name prefix and optional sample size.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    prefix: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Override the sample size for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.prefix, name);
        let saved = self.parent.sample_size;
        if let Some(n) = self.sample_size {
            self.parent.sample_size = n;
        }
        self.parent.bench_function(&full, f);
        self.parent.sample_size = saved;
        self
    }

    /// Finish the group (no-op; exists for API compatibility).
    pub fn finish(&mut self) {}
}

/// Timing helper passed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    warm_up: Duration,
    result: Option<Vec<f64>>,
}

impl Bencher {
    /// Measure `f`, called repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up budget is spent, learning how
        // many iterations fit in ~1/10 of a sample along the way.
        let warm_start = Instant::now();
        let mut iters_done = 0u64;
        while warm_start.elapsed() < self.warm_up {
            black_box(f());
            iters_done += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / iters_done.max(1) as f64;
        // Aim for samples of >= 1ms or a single iteration, whichever is
        // larger, so cheap ops aren't dominated by timer resolution.
        let batch = ((1_000_000.0 / per_iter.max(1.0)).ceil() as u64).max(1);

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        self.result = Some(samples);
    }

    fn finish(self, name: &str) -> Measurement {
        let mut samples = self
            .result
            .unwrap_or_else(|| panic!("bench {name}: closure never called Bencher::iter"));
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = samples.len();
        let median = if n % 2 == 1 {
            samples[n / 2]
        } else {
            0.5 * (samples[n / 2 - 1] + samples[n / 2])
        };
        Measurement {
            name: name.to_string(),
            min_ns: samples[0],
            median_ns: median,
            mean_ns: samples.iter().sum::<f64>() / n as f64,
            samples: n,
        }
    }
}

/// Define a benchmark group. Both upstream forms are supported:
///
/// ```ignore
/// criterion_group!(benches, bench_a, bench_b);
/// criterion_group! {
///     name = benches;
///     config = Criterion::default().sample_size(20);
///     targets = bench_a, bench_b
/// }
/// ```
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
        #[allow(dead_code)]
        fn __criterion_config_for(name: &str) -> Option<$crate::Criterion> {
            if name == stringify!($name) {
                Some($config)
            } else {
                None
            }
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
        #[allow(dead_code)]
        fn __criterion_config_for(_name: &str) -> Option<$crate::Criterion> {
            None
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $(
                let mut criterion = __criterion_config_for(stringify!($group))
                    .unwrap_or_default();
                $group(&mut criterion);
                criterion.write_json_report();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_measurement() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1));
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        assert_eq!(c.measurements().len(), 1);
        assert!(c.measurements()[0].median_ns >= 0.0);
    }

    #[test]
    fn group_prefixes_names() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1));
        {
            let mut g = c.benchmark_group("grp");
            g.sample_size(2);
            g.bench_function("x", |b| b.iter(|| black_box(0)));
            g.finish();
        }
        assert_eq!(c.measurements()[0].name, "grp/x");
        assert_eq!(c.measurements()[0].samples, 2);
    }

    #[test]
    fn json_report_is_wellformed_enough() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1));
        c.bench_function("a\"b", |b| b.iter(|| black_box(0)));
        let json = c.json_report();
        assert!(json.contains("\"benchmarks\""));
        assert!(json.contains("a\\\"b"));
    }
}

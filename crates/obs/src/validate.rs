//! Trace-file validation: every line must parse as JSON and carry the
//! keys its `kind` promises. The `train_report` binary (and through it
//! the obs-smoke CI job) runs this over freshly emitted traces, so a
//! schema regression fails the build rather than silently shipping an
//! unreadable trace.

use crate::json::Json;

/// What a validated trace contained.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceReport {
    /// Total JSONL lines.
    pub lines: usize,
    pub run_starts: usize,
    pub epochs: usize,
    pub kernel_stats: usize,
    pub run_ends: usize,
    /// `infer` records (frozen-model inference jobs).
    pub infers: usize,
    /// `serve` records (one per online-inference request).
    pub serves: usize,
    /// `sample_step` records (one per sampled-minibatch optimizer step).
    pub sample_steps: usize,
    /// Per-epoch `train_ns` values, in emission order.
    pub epoch_train_ns: Vec<u64>,
    /// Per-epoch `eval_ns` values, in emission order.
    pub epoch_eval_ns: Vec<u64>,
    /// Per-epoch `peak_tape_bytes` values, in emission order.
    pub epoch_peak_tape_bytes: Vec<u64>,
}

const RUN_START_KEYS: &[&str] = &[
    "task",
    "model",
    "dataset",
    "n_nodes",
    "n_edges",
    "seed",
    "epochs",
    "hidden",
    "levels",
    "gamma",
    "delta",
    "pooling",
    "parallel_feature",
];
const EPOCH_KEYS: &[&str] = &[
    "task",
    "epoch",
    "loss_total",
    "loss_task",
    "loss_kl",
    "loss_recon",
    "val_metric",
    "train_ns",
    "eval_ns",
    "grad_norms",
    "beta",
    "level_sizes",
    "peak_tape_bytes",
];
const RUN_END_KEYS: &[&str] = &["task", "epochs_run", "best_val", "test_metric", "wall_s"];
const KERNEL_KEYS: &[&str] = &["task", "kernels"];
const INFER_KEYS: &[&str] = &[
    "task",
    "checkpoint",
    "model",
    "dataset",
    "n_nodes",
    "pinned_structure",
    "forwards",
    "total_ns",
];
const SAMPLE_STEP_KEYS: &[&str] = &[
    "task",
    "epoch",
    "step",
    "seeds",
    "sampled_nodes",
    "sampled_edges",
    "truncated",
    "loss",
];
const SERVE_KEYS: &[&str] = &[
    "task",
    "endpoint",
    "status",
    "items",
    "batch_size",
    "queue_ns",
    "forward_ns",
];

fn require_keys(v: &Json, keys: &[&str], line_no: usize) -> Result<(), String> {
    for key in keys {
        if v.get(key).is_none() {
            return Err(format!("line {line_no}: missing required key {key:?}"));
        }
    }
    Ok(())
}

/// Validate the full text of a JSONL trace.
pub fn validate_trace(text: &str) -> Result<TraceReport, String> {
    let mut report = TraceReport::default();
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        if line.trim().is_empty() {
            return Err(format!("line {line_no}: empty line in trace"));
        }
        let v = Json::parse(line).map_err(|e| format!("line {line_no}: {e}"))?;
        report.lines += 1;
        let kind = v
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {line_no}: missing \"kind\""))?;
        match kind {
            "run_start" => {
                require_keys(&v, RUN_START_KEYS, line_no)?;
                report.run_starts += 1;
            }
            "epoch" => {
                require_keys(&v, EPOCH_KEYS, line_no)?;
                let ns = |key: &str| -> Result<u64, String> {
                    v.get(key)
                        .and_then(Json::as_f64)
                        .map(|x| x as u64)
                        .ok_or_else(|| format!("line {line_no}: {key} is not a number"))
                };
                report.epoch_train_ns.push(ns("train_ns")?);
                report.epoch_eval_ns.push(ns("eval_ns")?);
                report.epoch_peak_tape_bytes.push(ns("peak_tape_bytes")?);
                report.epochs += 1;
            }
            "kernel_stats" => {
                require_keys(&v, KERNEL_KEYS, line_no)?;
                report.kernel_stats += 1;
            }
            "run_end" => {
                require_keys(&v, RUN_END_KEYS, line_no)?;
                report.run_ends += 1;
            }
            "infer" => {
                require_keys(&v, INFER_KEYS, line_no)?;
                report.infers += 1;
            }
            "serve" => {
                require_keys(&v, SERVE_KEYS, line_no)?;
                report.serves += 1;
            }
            "sample_step" => {
                require_keys(&v, SAMPLE_STEP_KEYS, line_no)?;
                report.sample_steps += 1;
            }
            other => return Err(format!("line {line_no}: unknown kind {other:?}")),
        }
    }
    if report.lines == 0 {
        return Err("trace is empty".into());
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{EpochRecord, RunMeta};
    use crate::trace::Trace;
    use std::sync::{Arc, Mutex};

    #[derive(Clone)]
    struct Shared(Arc<Mutex<Vec<u8>>>);
    impl std::io::Write for Shared {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn emitted_trace_validates() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let mut t = Trace::to_writer("t", Box::new(Shared(buf.clone())));
        t.run_start(&RunMeta {
            model: "M".into(),
            dataset: "D".into(),
            n_nodes: 1,
            n_edges: 1,
            seed: 0,
            epochs: 1,
            hidden: 1,
            levels: 1,
            gamma: 0.0,
            delta: 0.0,
            pooling: "adamgnn".into(),
        });
        t.epoch(&EpochRecord {
            epoch: 0,
            loss_total: 1.0,
            loss_task: None,
            loss_kl: None,
            loss_recon: None,
            val_metric: None,
            train_ns: 7,
            eval_ns: 3,
            grad_norms: vec![],
            beta: None,
            level_sizes: vec![],
            peak_tape_bytes: 512,
        });
        t.kernel_stats();
        t.run_end(1, None, None);
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let report = validate_trace(&text).expect("trace validates");
        assert_eq!(report.lines, 4);
        assert_eq!(report.run_starts, 1);
        assert_eq!(report.epochs, 1);
        assert_eq!(report.kernel_stats, 1);
        assert_eq!(report.run_ends, 1);
        assert_eq!(report.epoch_train_ns, vec![7]);
        assert_eq!(report.epoch_eval_ns, vec![3]);
        assert_eq!(report.epoch_peak_tape_bytes, vec![512]);
    }

    #[test]
    fn infer_record_validates() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let mut t = Trace::to_writer("node_classification", Box::new(Shared(buf.clone())));
        t.infer(&crate::record::InferRecord {
            checkpoint: "ck.mgc".into(),
            model: "AdamGNN".into(),
            dataset: "cora".into(),
            n_nodes: 9,
            pinned_structure: false,
            forwards: 3,
            total_ns: 42,
        });
        drop(t);
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let report = validate_trace(&text).expect("infer trace validates");
        assert_eq!(report.infers, 1);
        // a truncated infer record must be rejected
        assert!(validate_trace("{\"kind\": \"infer\", \"task\": \"t\"}\n").is_err());
    }

    #[test]
    fn serve_record_validates() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let mut t = Trace::to_writer("serve", Box::new(Shared(buf.clone())));
        t.serve(&crate::record::ServeRecord {
            endpoint: "/v1/links".into(),
            status: 200,
            items: 2,
            batch_size: 5,
            queue_ns: 100,
            forward_ns: 9000,
        });
        t.serve(&crate::record::ServeRecord {
            endpoint: "/v1/nodes".into(),
            status: 400,
            items: 0,
            batch_size: 0,
            queue_ns: 0,
            forward_ns: 0,
        });
        drop(t);
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let report = validate_trace(&text).expect("serve trace validates");
        assert_eq!(report.serves, 2);
        // a serve record missing its batching keys must be rejected
        assert!(validate_trace(
            "{\"kind\": \"serve\", \"task\": \"serve\", \"endpoint\": \"/v1/nodes\"}\n"
        )
        .is_err());
    }

    #[test]
    fn sample_step_record_validates() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let mut t = Trace::to_writer("node_classification", Box::new(Shared(buf.clone())));
        t.sample_step(&crate::record::SampleStepRecord {
            epoch: 0,
            step: 3,
            seeds: 32,
            sampled_nodes: 190,
            sampled_edges: 400,
            truncated: 2,
            loss: 2.1,
        });
        drop(t);
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let report = validate_trace(&text).expect("sample_step trace validates");
        assert_eq!(report.sample_steps, 1);
        // a record missing its sampling counters must be rejected
        assert!(validate_trace(
            "{\"kind\": \"sample_step\", \"task\": \"t\", \"epoch\": 0, \"step\": 0}\n"
        )
        .is_err());
    }

    #[test]
    fn rejects_bad_traces() {
        assert!(validate_trace("").is_err());
        assert!(validate_trace("not json\n").is_err());
        assert!(validate_trace("{\"kind\": \"mystery\"}\n").is_err());
        // an epoch record missing its loss decomposition keys
        assert!(validate_trace("{\"kind\": \"epoch\", \"task\": \"t\", \"epoch\": 0}\n").is_err());
        // an otherwise-complete epoch record missing only peak_tape_bytes
        let no_peak = "{\"kind\": \"epoch\", \"task\": \"t\", \"epoch\": 0, \
             \"loss_total\": 1.0, \"loss_task\": null, \"loss_kl\": null, \
             \"loss_recon\": null, \"val_metric\": null, \"train_ns\": 1, \
             \"eval_ns\": 1, \"grad_norms\": [], \"beta\": null, \
             \"level_sizes\": []}\n";
        let err = validate_trace(no_peak).expect_err("peak_tape_bytes is required");
        assert!(err.contains("peak_tape_bytes"), "error was: {err}");
    }
}

//! The trace sink: a JSONL writer that every trainer owns for the
//! duration of one run.
//!
//! Activation mirrors `MG_KERNEL_STATS`: the `MG_TRACE` environment
//! variable names the output file and its absence makes every method a
//! no-op. The off path costs one env lookup per *run* (not per epoch) and
//! an `Option` check per call — telemetry collection at the call sites is
//! gated on [`Trace::enabled`], so a disabled run computes nothing extra.
//! Enabled or not, the sink only ever *reads* values the training loop
//! already produced and never draws from an RNG, so tracing cannot
//! perturb the computation (the mg-verify golden suite pins this).
//!
//! Records append to the file, so several runs in one process (or one
//! table sweep) share a single chronologically ordered trace.

use crate::record::{
    kernel_stats_json_line, EpochRecord, InferRecord, RunEnd, RunMeta, SampleStepRecord,
    ServeRecord,
};
use crate::summary::render_summary;
use std::fs::OpenOptions;
use std::io::{BufWriter, Write};
use std::time::Instant;

/// Wall-clock span timer for phase timings (train/eval per epoch).
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Stopwatch {
        Stopwatch(Instant::now())
    }

    /// Nanoseconds since [`Stopwatch::start`].
    pub fn elapsed_ns(&self) -> u64 {
        self.0.elapsed().as_nanos() as u64
    }
}

/// Running aggregates for the human-readable end-of-run summary.
#[derive(Clone, Debug, Default)]
pub(crate) struct Aggregates {
    pub epochs: usize,
    pub first_loss: Option<f64>,
    pub last_loss: f64,
    pub best_val: Option<f64>,
    pub train_ns: u64,
    pub eval_ns: u64,
}

struct Inner {
    out: BufWriter<Box<dyn Write>>,
    task: String,
    started: Instant,
    agg: Aggregates,
    /// Print the end-of-run summary to stderr (on for file sinks, off for
    /// in-memory test writers).
    summarize: bool,
}

/// A per-run telemetry sink. Construct via [`Trace::from_env`] in
/// production code; tests and report binaries can point it at an
/// explicit path or writer.
pub struct Trace {
    inner: Option<Inner>,
}

impl Trace {
    /// The sink `MG_TRACE` selects: a JSONL appender on the named file,
    /// or a no-op when the variable is unset or empty.
    pub fn from_env(task: &str) -> Trace {
        match std::env::var("MG_TRACE") {
            Ok(path) if !path.is_empty() => Trace::to_path(task, &path),
            _ => Trace::disabled(),
        }
    }

    /// A sink that appends to `path` (creating it if needed); `-` streams
    /// records to stderr instead. Falls back to a no-op with a stderr
    /// warning when the file cannot be opened — observability must never
    /// take down a training run.
    pub fn to_path(task: &str, path: &str) -> Trace {
        if path == "-" {
            return Trace::to_writer_impl(task, Box::new(std::io::stderr()), false);
        }
        match OpenOptions::new().create(true).append(true).open(path) {
            Ok(f) => Trace::to_writer_impl(task, Box::new(f), true),
            Err(e) => {
                eprintln!("mg-obs: cannot open MG_TRACE file {path:?}: {e}; tracing disabled");
                Trace::disabled()
            }
        }
    }

    /// A sink writing to an arbitrary writer (tests).
    pub fn to_writer(task: &str, out: Box<dyn Write>) -> Trace {
        Trace::to_writer_impl(task, out, false)
    }

    /// The always-off sink.
    pub fn disabled() -> Trace {
        Trace { inner: None }
    }

    fn to_writer_impl(task: &str, out: Box<dyn Write>, summarize: bool) -> Trace {
        Trace {
            inner: Some(Inner {
                out: BufWriter::new(out),
                task: task.to_string(),
                started: Instant::now(),
                agg: Aggregates::default(),
                summarize,
            }),
        }
    }

    /// Whether records will actually be written. Call sites gate any
    /// non-trivial telemetry computation (gradient norms, β statistics)
    /// on this so disabled runs stay zero-cost.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn write_line(inner: &mut Inner, line: &str) {
        // A full disk or closed pipe must not kill training; drop the
        // record and carry on.
        let _ = writeln!(inner.out, "{line}");
    }

    /// Emit the `run_start` record.
    pub fn run_start(&mut self, meta: &RunMeta) {
        if let Some(inner) = &mut self.inner {
            let line = meta.to_json_line(&inner.task);
            Self::write_line(inner, &line);
        }
    }

    /// Emit one `epoch` record and fold it into the summary aggregates.
    pub fn epoch(&mut self, rec: &EpochRecord) {
        if let Some(inner) = &mut self.inner {
            inner.agg.epochs += 1;
            inner.agg.first_loss.get_or_insert(rec.loss_total);
            inner.agg.last_loss = rec.loss_total;
            if let Some(v) = rec.val_metric {
                let best = inner.agg.best_val.get_or_insert(v);
                if v > *best {
                    *best = v;
                }
            }
            inner.agg.train_ns += rec.train_ns;
            inner.agg.eval_ns += rec.eval_ns;
            let line = rec.to_json_line(&inner.task);
            Self::write_line(inner, &line);
        }
    }

    /// Emit one `sample_step` record describing one sampled-minibatch
    /// optimizer step.
    pub fn sample_step(&mut self, rec: &SampleStepRecord) {
        if let Some(inner) = &mut self.inner {
            let line = rec.to_json_line(&inner.task);
            Self::write_line(inner, &line);
        }
    }

    /// Emit one `infer` record describing a frozen-model inference job.
    pub fn infer(&mut self, rec: &InferRecord) {
        if let Some(inner) = &mut self.inner {
            let line = rec.to_json_line(&inner.task);
            Self::write_line(inner, &line);
        }
    }

    /// Emit one `serve` record describing a served online-inference
    /// request (mg-serve emits one per HTTP request, including rejects).
    pub fn serve(&mut self, rec: &ServeRecord) {
        if let Some(inner) = &mut self.inner {
            let line = rec.to_json_line(&inner.task);
            Self::write_line(inner, &line);
        }
    }

    /// Flush buffered records to the sink without ending the run. A
    /// long-lived server calls this after each record so a trace reader
    /// (or a crash) never loses the tail of the file.
    pub fn flush(&mut self) {
        if let Some(inner) = &mut self.inner {
            let _ = inner.out.flush();
        }
    }

    /// Emit a `kernel_stats` record from mg-runtime's process-global
    /// registry (empty in serial builds, cumulative in parallel ones).
    pub fn kernel_stats(&mut self) {
        if let Some(inner) = &mut self.inner {
            let line = kernel_stats_json_line(&inner.task);
            Self::write_line(inner, &line);
        }
    }

    /// Emit the `run_end` record, flush, and (for file sinks) print the
    /// human-readable run summary to stderr.
    pub fn run_end(&mut self, epochs_run: usize, best_val: Option<f64>, test_metric: Option<f64>) {
        if let Some(inner) = &mut self.inner {
            let end = RunEnd {
                epochs_run,
                best_val,
                test_metric,
                wall_s: inner.started.elapsed().as_secs_f64(),
            };
            let line = end.to_json_line(&inner.task);
            Self::write_line(inner, &line);
            let _ = inner.out.flush();
            if inner.summarize {
                eprintln!("{}", render_summary(&inner.task, &inner.agg, &end));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use std::sync::{Arc, Mutex};

    /// A Write handle into a shared buffer the test can inspect.
    #[derive(Clone)]
    struct Shared(Arc<Mutex<Vec<u8>>>);

    impl Write for Shared {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn epoch_rec(epoch: usize, loss: f64, val: f64) -> EpochRecord {
        EpochRecord {
            epoch,
            loss_total: loss,
            loss_task: Some(loss),
            loss_kl: None,
            loss_recon: None,
            val_metric: Some(val),
            train_ns: 10,
            eval_ns: 5,
            grad_norms: vec![],
            beta: None,
            level_sizes: vec![],
            peak_tape_bytes: 256,
        }
    }

    #[test]
    fn disabled_trace_is_inert() {
        let mut t = Trace::disabled();
        assert!(!t.enabled());
        t.epoch(&epoch_rec(0, 1.0, 0.5));
        t.kernel_stats();
        t.run_end(1, Some(0.5), None);
    }

    #[test]
    fn from_env_without_var_is_disabled() {
        // The test harness never sets MG_TRACE; integration tests that do
        // live in their own test binary to avoid cross-test races.
        if std::env::var_os("MG_TRACE").is_none() {
            assert!(!Trace::from_env("t").enabled());
        }
    }

    #[test]
    fn writer_trace_emits_parseable_jsonl_in_order() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let mut t = Trace::to_writer("unit_test", Box::new(Shared(buf.clone())));
        assert!(t.enabled());
        t.run_start(&RunMeta {
            model: "M".into(),
            dataset: "D".into(),
            n_nodes: 4,
            n_edges: 3,
            seed: 0,
            epochs: 2,
            hidden: 8,
            levels: 1,
            gamma: 0.1,
            delta: 0.01,
            pooling: "adamgnn".into(),
        });
        t.epoch(&epoch_rec(0, 2.0, 0.25));
        t.epoch(&epoch_rec(1, 1.0, 0.75));
        t.kernel_stats();
        t.run_end(2, Some(0.75), Some(0.7));
        drop(t);
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let kinds: Vec<String> = text
            .lines()
            .map(|l| {
                Json::parse(l)
                    .expect("line parses")
                    .get("kind")
                    .unwrap()
                    .as_str()
                    .unwrap()
                    .to_string()
            })
            .collect();
        assert_eq!(
            kinds,
            ["run_start", "epoch", "epoch", "kernel_stats", "run_end"]
        );
        // every record carries the task label
        for l in text.lines() {
            assert_eq!(
                Json::parse(l).unwrap().get("task").unwrap().as_str(),
                Some("unit_test")
            );
        }
    }
}

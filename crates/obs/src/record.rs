//! Trace record types and their JSONL encodings.
//!
//! Every record renders as one self-describing JSON object per line with
//! a `kind` discriminant and the emitting run's `task`, so a single trace
//! file can interleave several runs (e.g. the node-classification and
//! link-prediction trainers of one table sweep) and still be filtered
//! with a one-line `jq 'select(.kind == "epoch")'`.

use crate::json::{number, string};

/// Static facts about one training run, emitted once as `run_start`.
#[derive(Clone, Debug)]
pub struct RunMeta {
    /// Model display name (e.g. `AdamGNN`).
    pub model: String,
    /// Dataset display name.
    pub dataset: String,
    /// Nodes in the (first) training graph.
    pub n_nodes: usize,
    /// Edges in the (first) training graph.
    pub n_edges: usize,
    pub seed: u64,
    /// Configured epoch budget (early stopping may use fewer).
    pub epochs: usize,
    pub hidden: usize,
    pub levels: usize,
    /// KL weight γ of the composite objective.
    pub gamma: f64,
    /// Reconstruction weight δ of the composite objective.
    pub delta: f64,
    /// Pooling operator tag (`adamgnn`/`asap`/`spapool`). Flat baselines
    /// record the configured default — only AdamGNN models act on it.
    pub pooling: String,
}

impl RunMeta {
    pub(crate) fn to_json_line(&self, task: &str) -> String {
        format!(
            "{{\"kind\": \"run_start\", \"task\": {}, \"model\": {}, \"dataset\": {}, \
             \"n_nodes\": {}, \"n_edges\": {}, \"seed\": {}, \"epochs\": {}, \
             \"hidden\": {}, \"levels\": {}, \"gamma\": {}, \"delta\": {}, \
             \"pooling\": {}, \"parallel_feature\": {}}}",
            string(task),
            string(&self.model),
            string(&self.dataset),
            self.n_nodes,
            self.n_edges,
            self.seed,
            self.epochs,
            self.hidden,
            self.levels,
            number(self.gamma),
            number(self.delta),
            string(&self.pooling),
            cfg!(feature = "parallel"),
        )
    }
}

/// Per-level summary statistics of the flyback attention `β` (Eq. 4):
/// each node attends over the granularity levels, so column `k` of the
/// `n x K` attention matrix summarises how much weight level `k`
/// receives across nodes. Collapse to one level shows up as one column's
/// mean pinned near 1 with the others near 0.
#[derive(Clone, Debug, PartialEq)]
pub struct BetaStats {
    pub mean: Vec<f64>,
    pub min: Vec<f64>,
    pub max: Vec<f64>,
}

impl BetaStats {
    /// Column-wise stats of a row-major `rows x cols` matrix given as a
    /// flat slice (the tensor crate's layout).
    pub fn from_flat(data: &[f64], cols: usize) -> BetaStats {
        assert!(
            cols > 0 && data.len().is_multiple_of(cols),
            "BetaStats: bad shape"
        );
        let rows = data.len() / cols;
        let mut mean = vec![0.0; cols];
        let mut min = vec![f64::INFINITY; cols];
        let mut max = vec![f64::NEG_INFINITY; cols];
        for r in 0..rows {
            for c in 0..cols {
                let x = data[r * cols + c];
                mean[c] += x;
                min[c] = min[c].min(x);
                max[c] = max[c].max(x);
            }
        }
        for m in &mut mean {
            *m /= rows as f64;
        }
        BetaStats { mean, min, max }
    }

    fn to_json(&self) -> String {
        let join = |v: &[f64]| v.iter().map(|&x| number(x)).collect::<Vec<_>>().join(", ");
        format!(
            "{{\"mean\": [{}], \"min\": [{}], \"max\": [{}]}}",
            join(&self.mean),
            join(&self.min),
            join(&self.max)
        )
    }
}

/// One epoch of telemetry, emitted as `kind: "epoch"`.
///
/// The loss decomposition mirrors adamgnn-core's `LossBreakdown`
/// (`L = L_task + γ·L_KL + δ·L_R`): `loss_total` is always present;
/// the per-term fields are `None` (JSON `null`) for models whose
/// objective has no such term (plain baselines, clustering's
/// unsupervised loop).
#[derive(Clone, Debug, PartialEq)]
pub struct EpochRecord {
    pub epoch: usize,
    /// Composite training loss (mean over batches for mini-batch loops).
    pub loss_total: f64,
    /// `L_task` — unweighted.
    pub loss_task: Option<f64>,
    /// `L_KL` (Eq. 5) — unweighted.
    pub loss_kl: Option<f64>,
    /// `L_R` (Eq. 6) — unweighted.
    pub loss_recon: Option<f64>,
    /// Validation metric after the epoch's update, when the task has one.
    pub val_metric: Option<f64>,
    /// Wall time of the training phase (forward + backward + step), ns.
    pub train_ns: u64,
    /// Wall time of the evaluation phase, ns.
    pub eval_ns: u64,
    /// L2 gradient norm per parameter tensor, in registration order.
    pub grad_norms: Vec<(String, f64)>,
    /// Flyback-β summary, when the model ran the flyback aggregator.
    pub beta: Option<BetaStats>,
    /// Hyper-node count per pooling level that actually formed.
    pub level_sizes: Vec<usize>,
    /// High-water mark of live tape bytes across the epoch's training
    /// tapes (max over batches for mini-batch loops). Retained tapes
    /// report the full forward footprint; checkpointed tapes
    /// (`MG_CKPT_TAPE=1`) the reduced one.
    pub peak_tape_bytes: u64,
}

impl EpochRecord {
    pub(crate) fn to_json_line(&self, task: &str) -> String {
        let opt = |x: Option<f64>| x.map_or_else(|| "null".to_string(), number);
        let norms = self
            .grad_norms
            .iter()
            .map(|(name, norm)| {
                format!("{{\"param\": {}, \"l2\": {}}}", string(name), number(*norm))
            })
            .collect::<Vec<_>>()
            .join(", ");
        let beta = self
            .beta
            .as_ref()
            .map_or_else(|| "null".to_string(), |b| b.to_json());
        let levels = self
            .level_sizes
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\"kind\": \"epoch\", \"task\": {}, \"epoch\": {}, \"loss_total\": {}, \
             \"loss_task\": {}, \"loss_kl\": {}, \"loss_recon\": {}, \"val_metric\": {}, \
             \"train_ns\": {}, \"eval_ns\": {}, \"grad_norms\": [{}], \"beta\": {}, \
             \"level_sizes\": [{}], \"peak_tape_bytes\": {}}}",
            string(task),
            self.epoch,
            number(self.loss_total),
            opt(self.loss_task),
            opt(self.loss_kl),
            opt(self.loss_recon),
            opt(self.val_metric),
            self.train_ns,
            self.eval_ns,
            norms,
            beta,
            levels,
            self.peak_tape_bytes,
        )
    }
}

/// One sampled-minibatch training step, emitted as `kind: "sample_step"`.
///
/// The sampled trainers emit one record per optimizer step (per-epoch
/// aggregates still land in the usual `epoch` record): how many seeds
/// the batch drew, how large the expanded ego-subgraph came out, and how
/// many frontier nodes had neighbor lists truncated by the fanout cap —
/// the knob a trace reader needs when deciding whether a fanout budget
/// is starving the receptive field.
#[derive(Clone, Debug, PartialEq)]
pub struct SampleStepRecord {
    pub epoch: usize,
    /// Step index within the epoch.
    pub step: usize,
    /// Seed nodes in the batch (after dedup).
    pub seeds: usize,
    /// Nodes in the sampled subgraph (seeds included).
    pub sampled_nodes: usize,
    /// Undirected edges in the induced subgraph.
    pub sampled_edges: usize,
    /// Frontier nodes whose neighbor list was cut by a fanout cap.
    pub truncated: usize,
    /// Composite training loss of this step.
    pub loss: f64,
}

impl SampleStepRecord {
    pub(crate) fn to_json_line(&self, task: &str) -> String {
        format!(
            "{{\"kind\": \"sample_step\", \"task\": {}, \"epoch\": {}, \"step\": {}, \
             \"seeds\": {}, \"sampled_nodes\": {}, \"sampled_edges\": {}, \
             \"truncated\": {}, \"loss\": {}}}",
            string(task),
            self.epoch,
            self.step,
            self.seeds,
            self.sampled_nodes,
            self.sampled_edges,
            self.truncated,
            number(self.loss),
        )
    }
}

/// One frozen-model inference job, emitted as `kind: "infer"`.
///
/// Inference loads a checkpoint instead of training, so the record
/// carries the checkpoint provenance plus forward-pass throughput — the
/// two facts a trace reader needs to tell a serving run from a training
/// run that happens to share the same model/dataset labels.
#[derive(Clone, Debug, PartialEq)]
pub struct InferRecord {
    /// Path of the checkpoint the frozen model was loaded from.
    pub checkpoint: String,
    /// Model display name recorded in the checkpoint.
    pub model: String,
    /// Dataset display name recorded in the checkpoint.
    pub dataset: String,
    /// Nodes in the graph the forwards ran over.
    pub n_nodes: usize,
    /// Whether the checkpoint pinned a frozen pooling structure that the
    /// forwards replayed (AdamGNN) or the model ran structure-free.
    pub pinned_structure: bool,
    /// Forward passes measured.
    pub forwards: usize,
    /// Total wall time of the measured forwards, ns.
    pub total_ns: u64,
}

impl InferRecord {
    pub(crate) fn to_json_line(&self, task: &str) -> String {
        format!(
            "{{\"kind\": \"infer\", \"task\": {}, \"checkpoint\": {}, \"model\": {}, \
             \"dataset\": {}, \"n_nodes\": {}, \"pinned_structure\": {}, \
             \"forwards\": {}, \"total_ns\": {}}}",
            string(task),
            string(&self.checkpoint),
            string(&self.model),
            string(&self.dataset),
            self.n_nodes,
            self.pinned_structure,
            self.forwards,
            self.total_ns,
        )
    }
}

/// One served online-inference request, emitted as `kind: "serve"`.
///
/// mg-serve emits one record per HTTP request, successful or rejected.
/// Requests that reached the micro-batcher carry the flush they rode in
/// (`batch_size`, shared `forward_ns`, per-request `queue_ns`); requests
/// rejected before batching (malformed JSON, unknown route, payload cap,
/// queue-full backpressure) record zeros there — the `status` field is
/// what distinguishes the outcomes.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeRecord {
    /// Request path (e.g. `/v1/nodes`).
    pub endpoint: String,
    /// HTTP status the server answered with.
    pub status: u16,
    /// Node ids / node pairs in the request body (0 when the body never
    /// parsed).
    pub items: usize,
    /// Requests coalesced into the flush this one was served by (0 for
    /// requests rejected before batching).
    pub batch_size: usize,
    /// Time spent queued before its flush started, ns.
    pub queue_ns: u64,
    /// Wall time of the flush's single batched forward, ns (shared by
    /// every request in the batch).
    pub forward_ns: u64,
}

impl ServeRecord {
    pub(crate) fn to_json_line(&self, task: &str) -> String {
        format!(
            "{{\"kind\": \"serve\", \"task\": {}, \"endpoint\": {}, \"status\": {}, \
             \"items\": {}, \"batch_size\": {}, \"queue_ns\": {}, \"forward_ns\": {}}}",
            string(task),
            string(&self.endpoint),
            self.status,
            self.items,
            self.batch_size,
            self.queue_ns,
            self.forward_ns,
        )
    }
}

/// Final results of a run, emitted as `kind: "run_end"`.
#[derive(Clone, Debug)]
pub struct RunEnd {
    pub epochs_run: usize,
    /// Best validation metric observed (tasks with validation).
    pub best_val: Option<f64>,
    /// Test metric at the best-validation checkpoint (or the final task
    /// metric for tasks without checkpointing, e.g. clustering NMI).
    pub test_metric: Option<f64>,
    /// Total run wall time in seconds.
    pub wall_s: f64,
}

impl RunEnd {
    pub(crate) fn to_json_line(&self, task: &str) -> String {
        let opt = |x: Option<f64>| x.map_or_else(|| "null".to_string(), number);
        format!(
            "{{\"kind\": \"run_end\", \"task\": {}, \"epochs_run\": {}, \"best_val\": {}, \
             \"test_metric\": {}, \"wall_s\": {}}}",
            string(task),
            self.epochs_run,
            opt(self.best_val),
            opt(self.test_metric),
            number(self.wall_s),
        )
    }
}

/// Render the kernel-timing registry snapshot as a `kernel_stats` record,
/// folding mg-runtime's `MG_KERNEL_STATS` story into the same trace file.
/// The registry is process-global and cumulative; `calls`/`total_ns` are
/// totals up to the moment of emission. Serial builds never record into
/// it, so the array is empty there.
pub(crate) fn kernel_stats_json_line(task: &str) -> String {
    let entries = mg_runtime::KernelStats::snapshot()
        .iter()
        .map(|(op, s)| {
            format!(
                "{{\"op\": {}, \"calls\": {}, \"total_ns\": {}}}",
                string(op),
                s.calls,
                s.total_ns
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\"kind\": \"kernel_stats\", \"task\": {}, \"kernels\": [{}]}}",
        string(task),
        entries
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn epoch_record_line_is_valid_json() {
        let rec = EpochRecord {
            epoch: 3,
            loss_total: 1.25,
            loss_task: Some(1.0),
            loss_kl: Some(0.5),
            loss_recon: None,
            val_metric: Some(0.75),
            train_ns: 123,
            eval_ns: 45,
            grad_norms: vec![("w\"eird".into(), 2.0), ("b".into(), f64::NAN)],
            beta: Some(BetaStats::from_flat(&[0.25, 0.75, 0.5, 0.5], 2)),
            level_sizes: vec![6, 3],
            peak_tape_bytes: 4096,
        };
        let line = rec.to_json_line("node_classification");
        let v = Json::parse(&line).expect("valid JSON");
        assert_eq!(v.get("kind").unwrap().as_str(), Some("epoch"));
        assert_eq!(v.get("loss_total").unwrap().as_f64(), Some(1.25));
        assert_eq!(v.get("loss_recon"), Some(&Json::Null));
        // a NaN grad norm must degrade to null, not corrupt the line
        let norms = v.get("grad_norms").unwrap().as_arr().unwrap();
        assert_eq!(norms[1].get("l2"), Some(&Json::Null));
        let beta = v.get("beta").unwrap();
        assert_eq!(beta.get("mean").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("level_sizes").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("peak_tape_bytes").unwrap().as_f64(), Some(4096.0));
    }

    #[test]
    fn beta_stats_columnwise() {
        let b = BetaStats::from_flat(&[0.0, 1.0, 0.5, 0.5, 1.0, 0.0], 2);
        assert_eq!(b.mean, vec![0.5, 0.5]);
        assert_eq!(b.min, vec![0.0, 0.0]);
        assert_eq!(b.max, vec![1.0, 1.0]);
    }

    #[test]
    fn run_meta_and_end_lines_parse() {
        let meta = RunMeta {
            model: "AdamGNN".into(),
            dataset: "cora".into(),
            n_nodes: 100,
            n_edges: 250,
            seed: 7,
            epochs: 30,
            hidden: 16,
            levels: 2,
            gamma: 0.1,
            delta: 0.01,
            pooling: "asap".into(),
        };
        let v = Json::parse(&meta.to_json_line("link_prediction")).unwrap();
        assert_eq!(v.get("kind").unwrap().as_str(), Some("run_start"));
        assert_eq!(v.get("n_edges").unwrap().as_f64(), Some(250.0));
        assert_eq!(v.get("pooling").unwrap().as_str(), Some("asap"));
        let end = RunEnd {
            epochs_run: 12,
            best_val: Some(0.9),
            test_metric: None,
            wall_s: 1.5,
        };
        let v = Json::parse(&end.to_json_line("link_prediction")).unwrap();
        assert_eq!(v.get("test_metric"), Some(&Json::Null));
    }

    #[test]
    fn sample_step_line_parses() {
        let rec = SampleStepRecord {
            epoch: 2,
            step: 5,
            seeds: 64,
            sampled_nodes: 410,
            sampled_edges: 900,
            truncated: 12,
            loss: 1.75,
        };
        let v = Json::parse(&rec.to_json_line("node_classification")).unwrap();
        assert_eq!(v.get("kind").unwrap().as_str(), Some("sample_step"));
        assert_eq!(v.get("seeds").unwrap().as_f64(), Some(64.0));
        assert_eq!(v.get("sampled_nodes").unwrap().as_f64(), Some(410.0));
        assert_eq!(v.get("truncated").unwrap().as_f64(), Some(12.0));
        assert_eq!(v.get("loss").unwrap().as_f64(), Some(1.75));
    }

    #[test]
    fn infer_line_parses() {
        let rec = InferRecord {
            checkpoint: "out/ck.mgc".into(),
            model: "AdamGNN".into(),
            dataset: "cora".into(),
            n_nodes: 120,
            pinned_structure: true,
            forwards: 10,
            total_ns: 12_345,
        };
        let v = Json::parse(&rec.to_json_line("node_classification")).unwrap();
        assert_eq!(v.get("kind").unwrap().as_str(), Some("infer"));
        assert_eq!(v.get("checkpoint").unwrap().as_str(), Some("out/ck.mgc"));
        assert_eq!(v.get("forwards").unwrap().as_f64(), Some(10.0));
        assert_eq!(v.get("pinned_structure"), Some(&Json::Bool(true)));
    }

    #[test]
    fn serve_line_parses() {
        let rec = ServeRecord {
            endpoint: "/v1/nodes".into(),
            status: 200,
            items: 4,
            batch_size: 3,
            queue_ns: 1_500,
            forward_ns: 90_000,
        };
        let v = Json::parse(&rec.to_json_line("serve")).unwrap();
        assert_eq!(v.get("kind").unwrap().as_str(), Some("serve"));
        assert_eq!(v.get("endpoint").unwrap().as_str(), Some("/v1/nodes"));
        assert_eq!(v.get("status").unwrap().as_f64(), Some(200.0));
        assert_eq!(v.get("batch_size").unwrap().as_f64(), Some(3.0));
        assert_eq!(v.get("queue_ns").unwrap().as_f64(), Some(1500.0));
    }

    #[test]
    fn kernel_stats_line_parses() {
        mg_runtime::KernelStats::record("obs_test_op", 10);
        let v = Json::parse(&kernel_stats_json_line("t")).unwrap();
        assert_eq!(v.get("kind").unwrap().as_str(), Some("kernel_stats"));
        assert!(v.get("kernels").unwrap().as_arr().unwrap().iter().any(|k| k
            .get("op")
            .unwrap()
            .as_str()
            == Some("obs_test_op")));
    }
}

//! Minimal JSON support for the trace sink: escaping and number
//! formatting on the write side, and a small recursive-descent parser on
//! the read side (the `train_report` binary and the obs-smoke CI job
//! re-read emitted traces to validate them).
//!
//! The writer guarantees every emitted line is valid JSON: strings are
//! escaped, and non-finite floats — which JSON cannot represent — are
//! written as `null` rather than `NaN`/`inf` tokens that would corrupt
//! the file.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escape `s` as the *contents* of a JSON string (no surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A quoted, escaped JSON string literal.
pub fn string(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

/// A JSON number literal; non-finite values become `null` (JSON has no
/// NaN/inf). Rust's `f64` Display prints the shortest round-tripping
/// decimal, so no precision is lost.
pub fn number(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parse one complete JSON document from `text`.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (None for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.num(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            // Surrogate pairs are not needed for trace
                            // content; map unpaired surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|c| c as char))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // consume one UTF-8 scalar (input is a valid &str)
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn num(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(string("x"), "\"x\"");
    }

    #[test]
    fn number_formats_round_trip() {
        assert_eq!(number(1.0), "1");
        assert_eq!(number(0.25), "0.25");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
        let x = 0.1 + 0.2;
        let parsed = Json::parse(&number(x)).unwrap();
        assert_eq!(parsed.as_f64().unwrap().to_bits(), x.to_bits());
    }

    #[test]
    fn parse_object_round_trip() {
        let v = Json::parse(r#"{"a": [1, 2.5, null], "b": {"c": "x\ny"}, "d": true}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("d"), Some(&Json::Bool(true)));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2], Json::Null);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\": 1} extra").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn parse_escapes() {
        let v = Json::parse(r#""aA\t""#).unwrap();
        assert_eq!(v.as_str(), Some("aA\t"));
    }
}

//! Human-readable end-of-run summary, printed to stderr when a file
//! trace finishes (the JSONL file holds the machine-readable truth; this
//! is the at-a-glance version).

use crate::record::RunEnd;
use crate::trace::Aggregates;

fn fmt_opt(x: Option<f64>) -> String {
    x.map_or_else(|| "-".to_string(), |v| format!("{v:.4}"))
}

/// Render the block `Trace::run_end` prints.
pub(crate) fn render_summary(task: &str, agg: &Aggregates, end: &RunEnd) -> String {
    let loss_path = match agg.first_loss {
        Some(first) => format!("{first:.4} -> {:.4}", agg.last_loss),
        None => "-".to_string(),
    };
    let mut top = String::new();
    let kernels = mg_runtime::KernelStats::snapshot();
    if !kernels.is_empty() {
        let total: u64 = kernels.iter().map(|(_, s)| s.total_ns).sum();
        let head: Vec<String> = kernels
            .iter()
            .take(3)
            .map(|(op, s)| {
                format!(
                    "{op} {:.0}%",
                    100.0 * s.total_ns as f64 / total.max(1) as f64
                )
            })
            .collect();
        top = format!("\n  top kernels : {}", head.join(", "));
    }
    format!(
        "mg-obs [{task}] summary\n\
         \x20 epochs run  : {}\n\
         \x20 loss        : {loss_path}\n\
         \x20 best val    : {}\n\
         \x20 test metric : {}\n\
         \x20 train time  : {:.3} s  (eval {:.3} s, total wall {:.3} s){top}",
        end.epochs_run,
        fmt_opt(end.best_val),
        fmt_opt(end.test_metric),
        agg.train_ns as f64 / 1e9,
        agg.eval_ns as f64 / 1e9,
        end.wall_s,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_mentions_key_facts() {
        let agg = Aggregates {
            epochs: 5,
            first_loss: Some(2.0),
            last_loss: 0.5,
            best_val: Some(0.9),
            train_ns: 2_000_000_000,
            eval_ns: 500_000_000,
        };
        let end = RunEnd {
            epochs_run: 5,
            best_val: Some(0.9),
            test_metric: Some(0.85),
            wall_s: 3.0,
        };
        let s = render_summary("node_classification", &agg, &end);
        assert!(s.contains("node_classification"));
        assert!(s.contains("2.0000 -> 0.5000"));
        assert!(s.contains("0.9000"));
        assert!(s.contains("0.8500"));
    }

    #[test]
    fn summary_handles_empty_run() {
        let s = render_summary(
            "t",
            &Aggregates::default(),
            &RunEnd {
                epochs_run: 0,
                best_val: None,
                test_metric: None,
                wall_s: 0.0,
            },
        );
        assert!(s.contains("loss        : -"));
    }
}

//! # mg-obs
//!
//! Structured training observability for the AdamGNN reproduction: a
//! per-run JSONL trace sink, span timers, per-epoch telemetry records
//! and a human-readable end-of-run summary.
//!
//! ## Activation
//!
//! `MG_TRACE=<path>` turns the sink on (records append to `<path>`);
//! when unset, [`Trace::from_env`] returns a no-op handle and every call
//! on it is free. The policy mirrors `MG_KERNEL_STATS`: observability is
//! opt-in per process and *never* perturbs the computation — the sink
//! only reads scalars the training loop already produced, never draws
//! from an RNG, and the mg-verify golden-trace suite pins the traced
//! trainers bitwise against their checked-in histories.
//!
//! ## Record kinds
//!
//! One JSON object per line, discriminated by `kind`:
//!
//! * `run_start` — model/dataset/config facts ([`RunMeta`]);
//! * `epoch` — composite loss plus its `L_task`/`L_KL`/`L_R`
//!   decomposition, validation metric, per-parameter gradient L2 norms,
//!   flyback-β summary statistics, per-level hyper-node counts, and
//!   train/eval wall time ([`EpochRecord`]);
//! * `kernel_stats` — a snapshot of mg-runtime's per-kernel timing
//!   registry, folding the `MG_KERNEL_STATS` story into the same file;
//! * `run_end` — best validation / test metrics and total wall time;
//! * `infer` — one frozen-model inference job: checkpoint provenance
//!   plus forward-pass throughput ([`InferRecord`]);
//! * `serve` — one online-inference request served by mg-serve: endpoint,
//!   HTTP status, micro-batch size, queue wait and the batched forward's
//!   wall time ([`ServeRecord`]).
//!
//! [`validate_trace`] re-parses an emitted trace and checks the schema;
//! the `train_report` binary and the obs-smoke CI job run it on every
//! trace they produce.

pub mod json;
pub mod record;
pub mod summary;
pub mod trace;
pub mod validate;

pub use json::Json;
pub use record::{
    BetaStats, EpochRecord, InferRecord, RunEnd, RunMeta, SampleStepRecord, ServeRecord,
};
pub use trace::{Stopwatch, Trace};
pub use validate::{validate_trace, TraceReport};

//! The checkpoint artifact: everything needed to reconstruct a training
//! run mid-flight, or to serve a trained model without retraining.
//!
//! A [`Checkpoint`] captures:
//! * run identity ([`CkptMeta`]) — task, model, dataset name and the
//!   model's build dimensions, so resume/inference can detect an
//!   artifact being applied to the wrong job;
//! * the training configuration ([`CkptConfig`], mirroring mg-eval's
//!   `TrainConfig` without depending on mg-eval);
//! * loop state ([`TrainState`]) — next epoch, best-validation
//!   bookkeeping, early-stopping counter;
//! * every parameter tensor with its Adam moments and the shared step
//!   counter ([`mg_tensor::ParamSnapshot`]);
//! * the exact RNG stream position (`[u64; 4]` xoshiro256++ state);
//! * the per-epoch trace so a resumed run returns the same full history
//!   as an uninterrupted one;
//! * optionally, the learned multi-grained pooling structure
//!   ([`adamgnn_core::FrozenStructure`]): the ego selections and
//!   coarsened adjacencies are learned artifacts in their own right, and
//!   persisting them lets inference replay the exact hierarchy the
//!   final model induced without re-deriving it from parameters.

use crate::codec;
use crate::format::{self, Dec, Enc, FORMAT_VERSION, MAGIC};
use adamgnn_core::{FrozenStructure, PoolingKind};
use mg_tensor::{MgError, ParamSnapshot};
use std::path::Path;

/// Section tags, in file order.
mod tag {
    pub const META: u8 = 1;
    pub const CONFIG: u8 = 2;
    pub const STATE: u8 = 3;
    pub const PARAMS: u8 = 4;
    pub const RNG: u8 = 5;
    pub const TRACE: u8 = 6;
    pub const STRUCTURE: u8 = 7;
}

/// Names of the checkpoint sections in file order (used by fault
/// injection tests to target each one).
pub const SECTIONS: [&str; 7] = [
    "meta",
    "config",
    "state",
    "params",
    "rng",
    "trace",
    "structure",
];

/// Identity of the run that produced an artifact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CkptMeta {
    /// Task id: `node_classification`, `link_prediction`,
    /// `graph_classification` or `node_clustering`.
    pub task: String,
    /// Model display name (e.g. `AdamGNN`, `GCN`).
    pub model: String,
    /// Dataset display name.
    pub dataset: String,
    /// Model input feature width it was built with.
    pub in_dim: usize,
    /// Model output width it was built with (classes or embedding dim).
    pub out_dim: usize,
    /// Node count of the training graph (0 for multi-graph tasks).
    pub n_nodes: usize,
}

/// The training configuration, as persisted.
///
/// This is a plain mirror of mg-eval's `TrainConfig` (mg-eval depends on
/// this crate, not the other way round). `gamma`/`delta` flatten its
/// `LossWeights`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CkptConfig {
    pub epochs: usize,
    pub lr: f64,
    pub patience: usize,
    pub hidden: usize,
    pub levels: usize,
    pub seed: u64,
    pub gamma: f64,
    pub delta: f64,
    pub flyback: bool,
    /// Pooling operator AdamGNN models were built with. Part of the
    /// resume identity: an artifact trained under one operator holds
    /// that operator's parameters, so resuming under another is a typed
    /// mismatch, never a silent reinterpretation.
    pub pooling: PoolingKind,
}

/// Mutable state of the training loop at the moment of capture.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrainState {
    /// First epoch a resumed run should execute.
    pub next_epoch: usize,
    /// Epochs completed so far.
    pub epochs_run: usize,
    /// Best validation metric observed (`-inf` before the first epoch).
    pub best_val: f64,
    /// Test metric at the best-validation epoch.
    pub best_test: f64,
    /// Consecutive epochs without validation improvement.
    pub bad_epochs: usize,
}

/// One row of the persisted per-epoch trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceRow {
    pub epoch: usize,
    pub loss: f64,
    pub val: f64,
}

/// A complete, loadable training checkpoint.
#[derive(Clone)]
pub struct Checkpoint {
    pub meta: CkptMeta,
    pub config: CkptConfig,
    pub state: TrainState,
    pub params: Vec<ParamSnapshot>,
    /// Adam step counter shared by all parameters.
    pub adam_t: u64,
    /// xoshiro256++ state of the trainer's RNG stream at capture time.
    pub rng: [u64; 4],
    /// Per-epoch (epoch, loss, val) history up to `state.epochs_run`.
    pub trace: Vec<TraceRow>,
    /// Wall-clock seconds per epoch (graph classification's Table-4
    /// metric); empty for tasks that don't time epochs.
    pub epoch_times: Vec<f64>,
    /// Learned pooling hierarchy of an AdamGNN node model, recorded in
    /// eval mode at capture time. `None` for baselines and for
    /// graph-level models (whose pooling is per-input-graph, not a
    /// persistent artifact).
    pub structure: Option<FrozenStructure>,
}

impl Checkpoint {
    /// Serialize to the versioned, checksummed binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());

        let mut e = Enc::new();
        e.str(&self.meta.task);
        e.str(&self.meta.model);
        e.str(&self.meta.dataset);
        e.usize(self.meta.in_dim);
        e.usize(self.meta.out_dim);
        e.usize(self.meta.n_nodes);
        format::write_section(&mut out, tag::META, &e.into_bytes());

        let mut e = Enc::new();
        let c = &self.config;
        e.usize(c.epochs);
        e.f64(c.lr);
        e.usize(c.patience);
        e.usize(c.hidden);
        e.usize(c.levels);
        e.u64(c.seed);
        e.f64(c.gamma);
        e.f64(c.delta);
        e.bool(c.flyback);
        e.u8(c.pooling.discriminant());
        format::write_section(&mut out, tag::CONFIG, &e.into_bytes());

        let mut e = Enc::new();
        let s = &self.state;
        e.usize(s.next_epoch);
        e.usize(s.epochs_run);
        e.f64(s.best_val);
        e.f64(s.best_test);
        e.usize(s.bad_epochs);
        format::write_section(&mut out, tag::STATE, &e.into_bytes());

        let mut e = Enc::new();
        e.u64(self.adam_t);
        e.usize(self.params.len());
        for p in &self.params {
            codec::enc_param(&mut e, p);
        }
        format::write_section(&mut out, tag::PARAMS, &e.into_bytes());

        let mut e = Enc::new();
        for lane in self.rng {
            e.u64(lane);
        }
        format::write_section(&mut out, tag::RNG, &e.into_bytes());

        let mut e = Enc::new();
        e.usize(self.trace.len());
        for row in &self.trace {
            e.usize(row.epoch);
            e.f64(row.loss);
            e.f64(row.val);
        }
        e.usize(self.epoch_times.len());
        for &t in &self.epoch_times {
            e.f64(t);
        }
        format::write_section(&mut out, tag::TRACE, &e.into_bytes());

        let mut e = Enc::new();
        codec::enc_structure(&mut e, &self.structure);
        format::write_section(&mut out, tag::STRUCTURE, &e.into_bytes());

        out
    }

    /// Parse the binary format, verifying magic, version and every
    /// section's CRC. All failures are typed [`MgError`]s.
    pub fn from_bytes(buf: &[u8]) -> Result<Checkpoint, MgError> {
        if buf.len() < 4 {
            return Err(MgError::Truncated {
                section: "header",
                needed: 4,
                available: buf.len(),
            });
        }
        if buf[..4] != MAGIC {
            return Err(MgError::BadMagic {
                found: buf[..4].try_into().unwrap(),
            });
        }
        if buf.len() < 8 {
            return Err(MgError::Truncated {
                section: "header",
                needed: 8,
                available: buf.len(),
            });
        }
        let version = u32::from_le_bytes(buf[4..8].try_into().unwrap());
        if version != FORMAT_VERSION {
            return Err(MgError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let mut pos = 8;

        let payload = format::read_section(buf, &mut pos, tag::META, "meta")?;
        let mut d = Dec::new(payload, "meta");
        let meta = CkptMeta {
            task: d.str()?,
            model: d.str()?,
            dataset: d.str()?,
            in_dim: d.usize()?,
            out_dim: d.usize()?,
            n_nodes: d.usize()?,
        };
        d.finish()?;

        let payload = format::read_section(buf, &mut pos, tag::CONFIG, "config")?;
        let mut d = Dec::new(payload, "config");
        let config = CkptConfig {
            epochs: d.usize()?,
            lr: d.f64()?,
            patience: d.usize()?,
            hidden: d.usize()?,
            levels: d.usize()?,
            seed: d.u64()?,
            gamma: d.f64()?,
            delta: d.f64()?,
            flyback: d.bool()?,
            pooling: {
                let disc = d.u8()?;
                PoolingKind::from_discriminant(disc)
                    .ok_or_else(|| d.corrupt(format!("unknown pooling operator {disc}")))?
            },
        };
        d.finish()?;

        let payload = format::read_section(buf, &mut pos, tag::STATE, "state")?;
        let mut d = Dec::new(payload, "state");
        let state = TrainState {
            next_epoch: d.usize()?,
            epochs_run: d.usize()?,
            best_val: d.f64()?,
            best_test: d.f64()?,
            bad_epochs: d.usize()?,
        };
        d.finish()?;

        let payload = format::read_section(buf, &mut pos, tag::PARAMS, "params")?;
        let mut d = Dec::new(payload, "params");
        let adam_t = d.u64()?;
        let n_params = d.len_of(1)?;
        let mut params = Vec::with_capacity(n_params);
        for _ in 0..n_params {
            params.push(codec::dec_param(&mut d)?);
        }
        d.finish()?;

        let payload = format::read_section(buf, &mut pos, tag::RNG, "rng")?;
        let mut d = Dec::new(payload, "rng");
        let rng = [d.u64()?, d.u64()?, d.u64()?, d.u64()?];
        d.finish()?;

        let payload = format::read_section(buf, &mut pos, tag::TRACE, "trace")?;
        let mut d = Dec::new(payload, "trace");
        let n_rows = d.len_of(24)?;
        let mut trace = Vec::with_capacity(n_rows);
        for _ in 0..n_rows {
            trace.push(TraceRow {
                epoch: d.usize()?,
                loss: d.f64()?,
                val: d.f64()?,
            });
        }
        let n_times = d.len_of(8)?;
        let mut epoch_times = Vec::with_capacity(n_times);
        for _ in 0..n_times {
            epoch_times.push(d.f64()?);
        }
        d.finish()?;

        let payload = format::read_section(buf, &mut pos, tag::STRUCTURE, "structure")?;
        let mut d = Dec::new(payload, "structure");
        let structure = codec::dec_structure(&mut d)?;
        d.finish()?;

        if pos != buf.len() {
            return Err(MgError::Corrupt {
                section: "trailer",
                detail: format!("{} unexpected trailing bytes", buf.len() - pos),
            });
        }

        Ok(Checkpoint {
            meta,
            config,
            state,
            params,
            adam_t,
            rng,
            trace,
            epoch_times,
            structure,
        })
    }

    /// Write atomically: serialize to a sibling temp file, then rename
    /// over `path`, so an interrupted save never leaves a half-written
    /// checkpoint behind under the real name.
    pub fn save(&self, path: &Path) -> Result<(), MgError> {
        let bytes = self.to_bytes();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, &bytes).map_err(|e| MgError::io(&tmp, e))?;
        std::fs::rename(&tmp, path).map_err(|e| MgError::io(path, e))
    }

    /// Load and fully validate a checkpoint file.
    pub fn load(path: &Path) -> Result<Checkpoint, MgError> {
        let bytes = std::fs::read(path).map_err(|e| MgError::io(path, e))?;
        Checkpoint::from_bytes(&bytes)
    }

    /// Cross-section consistency of a pinned pooling hierarchy.
    ///
    /// The structure section decodes independently of `meta`, so a
    /// checkpoint can be bytewise intact (every CRC passes) yet describe
    /// a hierarchy that does not chain from `meta.n_nodes` — replaying it
    /// would index out of range mid-forward. Serving paths
    /// (`FrozenModel::from_checkpoint`) call this to turn that class of
    /// corruption into a typed [`MgError::Mismatch`] up front. Each level
    /// must satisfy, with `prev` the node count of the level above
    /// (starting at `meta.n_nodes`):
    /// * every ego id indexes a `prev`-level node;
    /// * the coarse graph is non-empty and no larger than `prev`
    ///   (pooling never grows the graph), with at most one coarse column
    ///   per coarse node anchored on an ego;
    /// * the stored normalised adjacency is square over the coarse graph
    ///   with one value per stored nonzero.
    pub fn validate_structure(&self) -> Result<(), MgError> {
        let Some(s) = &self.structure else {
            return Ok(());
        };
        let mut prev = self.meta.n_nodes;
        for (k, level) in s.levels.iter().enumerate() {
            let mismatch = |detail: String| MgError::Mismatch {
                detail: format!("structure level {k}: {detail}"),
            };
            let coarse = level.next_topo.n();
            if coarse == 0 || coarse > prev {
                return Err(mismatch(format!(
                    "coarse graph has {coarse} nodes but pools {prev}"
                )));
            }
            if let Some(&ego) = level.egos.iter().find(|&&e| e >= prev) {
                return Err(mismatch(format!("ego {ego} out of range for {prev} nodes")));
            }
            if level.egos.is_empty() || level.egos.len() > coarse {
                return Err(mismatch(format!(
                    "{} egos cannot anchor {coarse} coarse nodes",
                    level.egos.len()
                )));
            }
            let (r, c) = (level.norm.csr.rows(), level.norm.csr.cols());
            if r != coarse || c != coarse {
                return Err(mismatch(format!(
                    "normalised adjacency is {r}x{c} for a {coarse}-node coarse graph"
                )));
            }
            if level.norm.values.len() != level.norm.csr.nnz() {
                return Err(mismatch(format!(
                    "{} adjacency values for {} stored nonzeros",
                    level.norm.values.len(),
                    level.norm.csr.nnz()
                )));
            }
            prev = coarse;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_tensor::Matrix;

    pub(crate) fn sample_checkpoint() -> Checkpoint {
        Checkpoint {
            meta: CkptMeta {
                task: "node_classification".into(),
                model: "AdamGNN".into(),
                dataset: "cora".into(),
                in_dim: 32,
                out_dim: 7,
                n_nodes: 140,
            },
            config: CkptConfig {
                epochs: 8,
                lr: 0.02,
                patience: 8,
                hidden: 16,
                levels: 2,
                seed: 1,
                gamma: 0.1,
                delta: 0.01,
                flyback: true,
                pooling: PoolingKind::AdamGnn,
            },
            state: TrainState {
                next_epoch: 3,
                epochs_run: 3,
                best_val: 0.75,
                best_test: 0.7,
                bad_epochs: 1,
            },
            params: vec![ParamSnapshot {
                name: "adam.gcn0.w".into(),
                value: Matrix::from_vec(2, 2, vec![1.0, -0.0, f64::NAN, 0.25]),
                m: Matrix::zeros(2, 2),
                v: Matrix::full(2, 2, 1e-9),
            }],
            adam_t: 3,
            rng: [1, 2, 3, 4],
            trace: vec![
                TraceRow {
                    epoch: 0,
                    loss: 1.9,
                    val: 0.3,
                },
                TraceRow {
                    epoch: 1,
                    loss: 1.2,
                    val: 0.75,
                },
                TraceRow {
                    epoch: 2,
                    loss: 1.0,
                    val: 0.6,
                },
            ],
            epoch_times: vec![0.01, 0.011, 0.009],
            structure: None,
        }
    }

    fn two_level_structure() -> FrozenStructure {
        // 140-node graph pooled to 3 hyper-nodes, then to 2.
        let coarse1 = mg_graph::Topology::from_edges(3, &[(0, 1), (1, 2)]);
        let coarse2 = mg_graph::Topology::from_edges(2, &[(0, 1)]);
        FrozenStructure {
            levels: vec![
                adamgnn_core::FrozenLevel {
                    egos: vec![5, 60, 139],
                    norm: mg_graph::gcn_norm(&coarse1),
                    next_topo: std::rc::Rc::new(coarse1),
                },
                adamgnn_core::FrozenLevel {
                    egos: vec![0, 2],
                    norm: mg_graph::gcn_norm(&coarse2),
                    next_topo: std::rc::Rc::new(coarse2),
                },
            ],
        }
    }

    #[test]
    fn structure_validation_accepts_consistent_chains() {
        let mut ck = sample_checkpoint();
        ck.validate_structure().expect("no structure is fine");
        ck.structure = Some(two_level_structure());
        ck.validate_structure().expect("consistent chain validates");
    }

    #[test]
    fn structure_validation_rejects_doctored_sections() {
        let doctor = |f: &mut dyn FnMut(&mut FrozenStructure)| {
            let mut ck = sample_checkpoint();
            let mut s = two_level_structure();
            f(&mut s);
            ck.structure = Some(s);
            ck.validate_structure()
        };
        // ego beyond the graph the checkpoint claims to describe
        let err = doctor(&mut |s| s.levels[0].egos[1] = 140).unwrap_err();
        assert!(matches!(err, MgError::Mismatch { .. }), "{err}");
        // second-level ego indexes the original graph, not the coarse one
        let err = doctor(&mut |s| s.levels[1].egos[0] = 3).unwrap_err();
        assert!(matches!(err, MgError::Mismatch { .. }), "{err}");
        // coarse graph larger than what it pools
        let big = mg_graph::Topology::from_edges(141, &[(0, 1)]);
        let err = doctor(&mut |s| {
            s.levels[0].norm = mg_graph::gcn_norm(&big);
            s.levels[0].next_topo = std::rc::Rc::new(big.clone());
        })
        .unwrap_err();
        assert!(matches!(err, MgError::Mismatch { .. }), "{err}");
        // adjacency dimensions disagree with the coarse topology
        let other = mg_graph::Topology::from_edges(5, &[(0, 1)]);
        let err = doctor(&mut |s| s.levels[0].norm = mg_graph::gcn_norm(&other)).unwrap_err();
        assert!(matches!(err, MgError::Mismatch { .. }), "{err}");
        // value array out of step with the stored nonzeros
        let err = doctor(&mut |s| {
            s.levels[0].norm.values.pop();
        })
        .unwrap_err();
        assert!(matches!(err, MgError::Mismatch { .. }), "{err}");
        // more egos than coarse nodes
        let err = doctor(&mut |s| s.levels[1].egos = vec![0, 1, 1]).unwrap_err();
        assert!(matches!(err, MgError::Mismatch { .. }), "{err}");
        // empty ego list can anchor nothing
        let err = doctor(&mut |s| s.levels[0].egos.clear()).unwrap_err();
        assert!(matches!(err, MgError::Mismatch { .. }), "{err}");
    }

    #[test]
    fn save_load_save_is_byte_identical() {
        let ck = sample_checkpoint();
        let bytes = ck.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).expect("load");
        let bytes2 = back.to_bytes();
        assert_eq!(bytes, bytes2, "save -> load -> save must be byte-identical");
        // NaN parameter survived bit-exactly
        assert_eq!(back.params[0].value.data()[2].to_bits(), f64::NAN.to_bits());
        assert_eq!(back.state, ck.state);
        assert_eq!(back.trace, ck.trace);
        assert_eq!(back.rng, ck.rng);
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let mut bytes = sample_checkpoint().to_bytes();
        assert!(matches!(
            Checkpoint::from_bytes(b"ELF\x7fwhatever"),
            Err(MgError::BadMagic { .. })
        ));
        bytes[4] = 99; // version
        assert!(matches!(
            Checkpoint::from_bytes(&bytes),
            Err(MgError::UnsupportedVersion {
                found: 99,
                supported: FORMAT_VERSION
            })
        ));
    }

    #[test]
    fn every_section_is_crc_protected() {
        let good = sample_checkpoint().to_bytes();
        // Flipping any single payload byte must fail with a typed error.
        // Walk the whole file past the header; tag/len/crc corruption
        // also has to fail (as Corrupt or Truncated, never a panic).
        for i in 8..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x01;
            match Checkpoint::from_bytes(&bad) {
                Err(
                    MgError::Corrupt { .. }
                    | MgError::Truncated { .. }
                    | MgError::UnsupportedVersion { .. },
                ) => {}
                Err(other) => panic!("byte {i}: unexpected error {other}"),
                Ok(_) => panic!("byte {i}: corruption was not detected"),
            }
        }
    }

    #[test]
    fn every_truncation_fails_loudly() {
        let good = sample_checkpoint().to_bytes();
        for cut in 0..good.len() {
            match Checkpoint::from_bytes(&good[..cut]) {
                Err(
                    MgError::Truncated { .. } | MgError::Corrupt { .. } | MgError::BadMagic { .. },
                ) => {}
                Err(other) => panic!("cut {cut}: unexpected error {other}"),
                Ok(_) => panic!("cut {cut}: truncated file loaded"),
            }
        }
    }

    #[test]
    fn file_roundtrip_and_io_error() {
        let dir = std::env::temp_dir().join("mg_ckpt_test_roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ck.mgck");
        let ck = sample_checkpoint();
        ck.save(&path).expect("save");
        let back = Checkpoint::load(&path).expect("load");
        assert_eq!(back.to_bytes(), ck.to_bytes());
        let missing = dir.join("does_not_exist.mgck");
        assert!(matches!(
            Checkpoint::load(&missing),
            Err(MgError::Io { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}

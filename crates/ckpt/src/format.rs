//! Low-level checkpoint file format: framing, checksums, primitives.
//!
//! Layout of a checkpoint file:
//!
//! ```text
//! magic    4 bytes  b"MGCK"
//! version  u32 LE   FORMAT_VERSION
//! section*          one frame per section, in a fixed order
//! ```
//!
//! Each section frame is:
//!
//! ```text
//! tag      u8       section discriminant (see checkpoint.rs)
//! len      u64 LE   payload length in bytes
//! payload  len bytes
//! crc      u32 LE   CRC-32 (IEEE) of the payload
//! ```
//!
//! All integers are little-endian. Every `f64` is stored as its IEEE-754
//! bit pattern (`to_bits`), the same authority the golden suite uses, so
//! a round trip is bit-exact including NaNs, signed zeros and infinities.
//!
//! Decoding never trusts a length before checking the bytes are actually
//! present, so a truncated file surfaces as [`MgError::Truncated`] with
//! the section it died in, and a flipped byte surfaces as
//! [`MgError::Corrupt`] from the CRC — never as a panic or garbage data.

use mg_tensor::MgError;

/// File magic: "MGCK".
pub const MAGIC: [u8; 4] = *b"MGCK";

/// Current format version. Readers reject anything else with
/// [`MgError::UnsupportedVersion`]; bump on any layout change.
/// v2 appended the pooling-operator discriminant to the config section.
pub const FORMAT_VERSION: u32 = 2;

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Append-only payload builder with the format's primitive encodings.
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn u8(&mut self, x: u8) {
        self.buf.push(x);
    }

    pub fn u32(&mut self, x: u32) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    pub fn u64(&mut self, x: u64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    pub fn usize(&mut self, x: usize) {
        self.u64(x as u64);
    }

    /// Bit-exact f64: the IEEE-754 pattern, not a decimal rendering.
    pub fn f64(&mut self, x: f64) {
        self.u64(x.to_bits());
    }

    pub fn bool(&mut self, x: bool) {
        self.u8(x as u8);
    }

    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Bounds-checked payload reader. Every accessor fails with a typed
/// error naming `section` instead of panicking or reading past the end.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl<'a> Dec<'a> {
    pub fn new(buf: &'a [u8], section: &'static str) -> Self {
        Dec {
            buf,
            pos: 0,
            section,
        }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Take `n` raw bytes or report how the section fell short.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], MgError> {
        if self.remaining() < n {
            return Err(MgError::Truncated {
                section: self.section,
                needed: n,
                available: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn u8(&mut self) -> Result<u8, MgError> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32, MgError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, MgError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn usize(&mut self) -> Result<usize, MgError> {
        let x = self.u64()?;
        usize::try_from(x).map_err(|_| self.corrupt(format!("length {x} exceeds usize")))
    }

    /// A length field about to drive an allocation: additionally check
    /// the payload actually has `count * elem_bytes` bytes left, so a
    /// corrupt length cannot trigger a huge allocation before the
    /// shortfall is noticed.
    pub fn len_of(&mut self, elem_bytes: usize) -> Result<usize, MgError> {
        let count = self.usize()?;
        let needed = count
            .checked_mul(elem_bytes)
            .ok_or_else(|| self.corrupt(format!("length {count} overflows")))?;
        if self.remaining() < needed {
            return Err(MgError::Truncated {
                section: self.section,
                needed,
                available: self.remaining(),
            });
        }
        Ok(count)
    }

    pub fn f64(&mut self) -> Result<f64, MgError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn bool(&mut self) -> Result<bool, MgError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(self.corrupt(format!("bad bool byte {b}"))),
        }
    }

    pub fn str(&mut self) -> Result<String, MgError> {
        let len = self.len_of(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.corrupt("invalid UTF-8 in string"))
    }

    /// The section must be fully consumed; trailing bytes mean the
    /// payload disagrees with its own encoding.
    pub fn finish(self) -> Result<(), MgError> {
        if self.remaining() != 0 {
            return Err(MgError::Corrupt {
                section: self.section,
                detail: format!("{} trailing bytes after decode", self.remaining()),
            });
        }
        Ok(())
    }

    /// A [`MgError::Corrupt`] for this section.
    pub fn corrupt(&self, detail: impl Into<String>) -> MgError {
        MgError::Corrupt {
            section: self.section,
            detail: detail.into(),
        }
    }
}

/// Append one framed section (tag, length, payload, CRC) to `out`.
pub fn write_section(out: &mut Vec<u8>, tag: u8, payload: &[u8]) {
    out.push(tag);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
}

/// Read the next framed section, verifying the expected tag and the CRC.
/// Returns the payload slice.
pub fn read_section<'a>(
    buf: &'a [u8],
    pos: &mut usize,
    expect_tag: u8,
    section: &'static str,
) -> Result<&'a [u8], MgError> {
    let header_need = 1 + 8;
    if buf.len() - *pos < header_need {
        return Err(MgError::Truncated {
            section,
            needed: header_need,
            available: buf.len() - *pos,
        });
    }
    let tag = buf[*pos];
    if tag != expect_tag {
        return Err(MgError::Corrupt {
            section,
            detail: format!("expected section tag {expect_tag}, found {tag}"),
        });
    }
    let len = u64::from_le_bytes(buf[*pos + 1..*pos + 9].try_into().unwrap());
    let len = usize::try_from(len).map_err(|_| MgError::Corrupt {
        section,
        detail: format!("section length {len} exceeds usize"),
    })?;
    let body_start = *pos + header_need;
    let need = len.checked_add(4).ok_or(MgError::Corrupt {
        section,
        detail: "section length overflows".into(),
    })?;
    if buf.len() - body_start < need {
        return Err(MgError::Truncated {
            section,
            needed: need,
            available: buf.len() - body_start,
        });
    }
    let payload = &buf[body_start..body_start + len];
    let stored = u32::from_le_bytes(
        buf[body_start + len..body_start + len + 4]
            .try_into()
            .unwrap(),
    );
    let actual = crc32(payload);
    if stored != actual {
        return Err(MgError::Corrupt {
            section,
            detail: format!("CRC mismatch: stored {stored:#010x}, computed {actual:#010x}"),
        });
    }
    *pos = body_start + len + 4;
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // standard check value for "123456789" under CRC-32/IEEE
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn primitives_roundtrip_bit_exact() {
        let mut e = Enc::new();
        e.u8(7);
        e.u64(u64::MAX);
        e.f64(-0.0);
        e.f64(f64::NAN);
        e.f64(1.0 / 3.0);
        e.bool(true);
        e.str("héllo");
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes, "test");
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u64().unwrap(), u64::MAX);
        assert_eq!(d.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(d.f64().unwrap().to_bits(), f64::NAN.to_bits());
        assert_eq!(d.f64().unwrap(), 1.0 / 3.0);
        assert!(d.bool().unwrap());
        assert_eq!(d.str().unwrap(), "héllo");
        d.finish().unwrap();
    }

    #[test]
    fn decoder_reports_truncation_not_panic() {
        let mut e = Enc::new();
        e.u64(42);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes[..5], "state");
        let err = d.u64().unwrap_err();
        assert!(matches!(
            err,
            MgError::Truncated {
                section: "state",
                needed: 8,
                available: 5
            }
        ));
    }

    #[test]
    fn length_prefix_cannot_force_huge_allocation() {
        let mut e = Enc::new();
        e.u64(u64::MAX / 2); // bogus element count
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes, "params");
        assert!(d.len_of(8).is_err());
    }

    #[test]
    fn section_crc_rejects_flipped_byte() {
        let mut out = Vec::new();
        write_section(&mut out, 3, b"payload-bytes");
        let mut pos = 0;
        assert!(read_section(&out, &mut pos, 3, "s").is_ok());
        // flip one payload byte
        let mut bad = out.clone();
        bad[12] ^= 0x40;
        let mut pos = 0;
        assert!(matches!(
            read_section(&bad, &mut pos, 3, "s"),
            Err(MgError::Corrupt { .. })
        ));
        // wrong tag
        let mut pos = 0;
        assert!(matches!(
            read_section(&out, &mut pos, 4, "s"),
            Err(MgError::Corrupt { .. })
        ));
        // truncated body
        let mut pos = 0;
        assert!(matches!(
            read_section(&out[..out.len() - 3], &mut pos, 3, "s"),
            Err(MgError::Truncated { .. })
        ));
    }
}

//! # mg-ckpt
//!
//! Versioned, checksummed binary checkpoints for the AdamGNN
//! reproduction: persist a training run's parameters, optimizer
//! moments, RNG stream position, configuration, loop counters, trace
//! and learned pooling structure; load it back to resume bit-for-bit
//! or to serve a frozen model.
//!
//! Std-only by design (like the rest of the workspace): the format is a
//! few hundred lines of explicit little-endian framing with CRC-32 per
//! section, not a serde dependency. `f64`s are stored as IEEE-754 bit
//! patterns — the same authority the golden-trace suite uses — so a
//! save→load→save cycle is byte-identical and resumed runs replay the
//! exact float sequence of uninterrupted ones.
//!
//! Corrupt, truncated or version-skewed files fail loudly with typed
//! [`mg_tensor::MgError`]s; loading never panics on bad bytes and never
//! returns garbage predictions.

mod checkpoint;
mod codec;
pub mod format;

pub use checkpoint::{Checkpoint, CkptConfig, CkptMeta, TraceRow, TrainState, SECTIONS};
pub use format::{crc32, FORMAT_VERSION, MAGIC};

//! Encoders/decoders for the domain types a checkpoint carries.
//!
//! Decoding validates structural invariants (monotone CSR index
//! pointers, in-range column indices, matching shapes) *before*
//! constructing the domain types, because their constructors enforce
//! those invariants with asserts — a corrupt-but-CRC-valid payload must
//! come back as [`MgError::Corrupt`], never a panic.

use crate::format::{Dec, Enc};
use adamgnn_core::{FrozenLevel, FrozenStructure};
use mg_graph::{NormAdj, Topology};
use mg_tensor::{Csr, Matrix, MgError, ParamSnapshot};
use std::rc::Rc;

pub fn enc_matrix(e: &mut Enc, m: &Matrix) {
    e.usize(m.rows());
    e.usize(m.cols());
    for &x in m.data() {
        e.f64(x);
    }
}

pub fn dec_matrix(d: &mut Dec) -> Result<Matrix, MgError> {
    let rows = d.usize()?;
    let cols = d.usize()?;
    let len = rows
        .checked_mul(cols)
        .ok_or_else(|| d.corrupt(format!("matrix shape {rows}x{cols} overflows")))?;
    if d.remaining() < len.saturating_mul(8) {
        return Err(d.corrupt(format!(
            "matrix {rows}x{cols} needs {} bytes, {} remain",
            len * 8,
            d.remaining()
        )));
    }
    let mut data = Vec::with_capacity(len);
    for _ in 0..len {
        data.push(d.f64()?);
    }
    Ok(Matrix::from_vec(rows, cols, data))
}

pub fn enc_param(e: &mut Enc, p: &ParamSnapshot) {
    e.str(&p.name);
    enc_matrix(e, &p.value);
    enc_matrix(e, &p.m);
    enc_matrix(e, &p.v);
}

pub fn dec_param(d: &mut Dec) -> Result<ParamSnapshot, MgError> {
    let name = d.str()?;
    let value = dec_matrix(d)?;
    let m = dec_matrix(d)?;
    let v = dec_matrix(d)?;
    if m.shape() != value.shape() || v.shape() != value.shape() {
        return Err(d.corrupt(format!(
            "parameter '{name}': moment shapes {:?}/{:?} disagree with value {:?}",
            m.shape(),
            v.shape(),
            value.shape()
        )));
    }
    Ok(ParamSnapshot { name, value, m, v })
}

pub fn enc_csr(e: &mut Enc, c: &Csr) {
    e.usize(c.rows());
    e.usize(c.cols());
    e.usize(c.nnz());
    for &p in c.indptr() {
        e.usize(p);
    }
    for &i in c.indices() {
        e.u32(i);
    }
}

pub fn dec_csr(d: &mut Dec) -> Result<Csr, MgError> {
    let rows = d.usize()?;
    let cols = d.usize()?;
    let nnz = d.usize()?;
    if d.remaining() < (rows + 1).saturating_mul(8).saturating_add(nnz * 4) {
        return Err(d.corrupt(format!(
            "CSR {rows}x{cols} with {nnz} nnz larger than remaining payload"
        )));
    }
    let mut indptr = Vec::with_capacity(rows + 1);
    for _ in 0..=rows {
        indptr.push(d.usize()?);
    }
    let mut indices = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        indices.push(d.u32()?);
    }
    // validate the invariants Csr::from_parts would assert on
    if indptr.first() != Some(&0) || *indptr.last().unwrap() != nnz {
        return Err(d.corrupt("CSR indptr endpoints disagree with nnz"));
    }
    if indptr.windows(2).any(|w| w[0] > w[1]) {
        return Err(d.corrupt("CSR indptr is not monotone"));
    }
    if indices.iter().any(|&i| i as usize >= cols) {
        return Err(d.corrupt("CSR column index out of range"));
    }
    Ok(Csr::from_parts(rows, cols, indptr, indices))
}

pub fn enc_topology(e: &mut Enc, t: &Topology) {
    e.usize(t.n());
    let edges = t.edges();
    e.usize(edges.len());
    for &(u, v) in edges {
        e.u32(u);
        e.u32(v);
    }
}

pub fn dec_topology(d: &mut Dec) -> Result<Topology, MgError> {
    let n = d.usize()?;
    let m = d.len_of(8)?;
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let u = d.u32()?;
        let v = d.u32()?;
        if u as usize >= n || v as usize >= n {
            return Err(d.corrupt(format!("edge ({u},{v}) out of range for {n} nodes")));
        }
        edges.push((u, v));
    }
    Ok(Topology::from_edges(n, &edges))
}

pub fn enc_norm_adj(e: &mut Enc, a: &NormAdj) {
    enc_csr(e, &a.csr);
    e.usize(a.values.len());
    for &x in &a.values {
        e.f64(x);
    }
}

pub fn dec_norm_adj(d: &mut Dec) -> Result<NormAdj, MgError> {
    let csr = dec_csr(d)?;
    let len = d.len_of(8)?;
    if len != csr.nnz() {
        return Err(d.corrupt(format!(
            "NormAdj values length {len} disagrees with nnz {}",
            csr.nnz()
        )));
    }
    let mut values = Vec::with_capacity(len);
    for _ in 0..len {
        values.push(d.f64()?);
    }
    Ok(NormAdj {
        csr: Rc::new(csr),
        values,
    })
}

pub fn enc_structure(e: &mut Enc, s: &Option<FrozenStructure>) {
    match s {
        None => e.bool(false),
        Some(fs) => {
            e.bool(true);
            e.usize(fs.levels.len());
            for level in &fs.levels {
                e.usize(level.egos.len());
                for &ego in &level.egos {
                    e.usize(ego);
                }
                enc_norm_adj(e, &level.norm);
                enc_topology(e, &level.next_topo);
            }
        }
    }
}

pub fn dec_structure(d: &mut Dec) -> Result<Option<FrozenStructure>, MgError> {
    if !d.bool()? {
        return Ok(None);
    }
    let n_levels = d.len_of(1)?;
    let mut levels = Vec::with_capacity(n_levels);
    for _ in 0..n_levels {
        let n_egos = d.len_of(8)?;
        let mut egos = Vec::with_capacity(n_egos);
        for _ in 0..n_egos {
            egos.push(d.usize()?);
        }
        let norm = dec_norm_adj(d)?;
        let next_topo = Rc::new(dec_topology(d)?);
        levels.push(FrozenLevel {
            egos,
            norm,
            next_topo,
        });
    }
    Ok(Some(FrozenStructure { levels }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{Dec, Enc};

    fn roundtrip<T>(
        value: &T,
        enc: impl Fn(&mut Enc, &T),
        dec: impl Fn(&mut Dec) -> Result<T, MgError>,
    ) -> T {
        let mut e = Enc::new();
        enc(&mut e, value);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes, "test");
        let out = dec(&mut d).expect("decode");
        d.finish().expect("fully consumed");
        out
    }

    #[test]
    fn matrix_roundtrips_bit_exact() {
        let m = Matrix::from_vec(2, 3, vec![1.0, -0.0, f64::NAN, 1e-300, 3.5, f64::INFINITY]);
        let back = roundtrip(&m, enc_matrix, dec_matrix);
        assert_eq!(back.shape(), (2, 3));
        for (a, b) in m.data().iter().zip(back.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn csr_roundtrips_and_rejects_corruption() {
        let c = Csr::from_coo(3, 4, &[(0, 1), (0, 3), (2, 0)]);
        let back = roundtrip(&c, enc_csr, dec_csr);
        assert_eq!(back.indptr(), c.indptr());
        assert_eq!(back.indices(), c.indices());

        // out-of-range column index must decode to Corrupt, not an assert
        let mut e = Enc::new();
        enc_csr(&mut e, &c);
        let mut bytes = e.into_bytes();
        // last 4 bytes are the final u32 column index; make it huge
        let len = bytes.len();
        bytes[len - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut d = Dec::new(&bytes, "structure");
        assert!(matches!(dec_csr(&mut d), Err(MgError::Corrupt { .. })));
    }

    #[test]
    fn topology_roundtrips() {
        let t = Topology::from_edges(5, &[(0, 1), (1, 2), (3, 4)]);
        let back = roundtrip(&t, enc_topology, dec_topology);
        assert_eq!(back.n(), 5);
        assert_eq!(back.edges(), t.edges());
    }

    #[test]
    fn structure_roundtrips() {
        let topo = Topology::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let norm = mg_graph::gcn_norm(&topo);
        let fs = Some(FrozenStructure {
            levels: vec![FrozenLevel {
                egos: vec![0, 2],
                norm: norm.clone(),
                next_topo: Rc::new(Topology::from_edges(2, &[(0, 1)])),
            }],
        });
        let back = roundtrip(&fs, enc_structure, dec_structure).expect("some");
        assert_eq!(back.levels.len(), 1);
        assert_eq!(back.levels[0].egos, vec![0, 2]);
        assert_eq!(back.levels[0].norm.values, norm.values);
        assert_eq!(back.levels[0].next_topo.n(), 2);
        let none = roundtrip(&None, enc_structure, dec_structure);
        assert!(none.is_none());
    }

    #[test]
    fn param_decoder_rejects_moment_shape_mismatch() {
        let mut e = Enc::new();
        e.str("w");
        enc_matrix(&mut e, &Matrix::zeros(2, 2));
        enc_matrix(&mut e, &Matrix::zeros(2, 3)); // m: wrong shape
        enc_matrix(&mut e, &Matrix::zeros(2, 2));
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes, "params");
        assert!(matches!(dec_param(&mut d), Err(MgError::Corrupt { .. })));
    }
}

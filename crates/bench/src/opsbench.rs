//! Serial-vs-parallel kernel timings, exported as `BENCH_ops.json`.
//!
//! The suite times each hot kernel twice in one process — under a
//! one-thread pool (the exact serial path) and under an N-thread pool —
//! using `mg_runtime::with_pool`, and writes a machine-readable JSON
//! report. Both the `ops` criterion bench and the `table1` binary call
//! [`emit_default`], so every benchmark run leaves a fresh report behind.
//!
//! Pool size resolution: `MG_NUM_THREADS` if set, else the host's
//! available parallelism. A pool wider than the host cannot measure
//! parallel speedup — its threads time-slice the same cores, which
//! manufactures slowdowns — so when `pool_threads > host_threads` the
//! report records both fields, carries a top-level `warning`, and emits
//! `"speedup": null` for every op rather than claiming numbers the
//! hardware cannot support.

use mg_graph::{gcn_norm, Topology};
use mg_runtime::{with_pool, Pool};
use mg_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// One kernel's serial and parallel medians.
#[derive(Clone, Debug)]
pub struct OpTiming {
    pub op: &'static str,
    pub serial_ns: f64,
    pub parallel_ns: f64,
}

impl OpTiming {
    /// Serial / parallel ratio (>1 means the pool helped).
    pub fn speedup(&self) -> f64 {
        if self.parallel_ns > 0.0 {
            self.serial_ns / self.parallel_ns
        } else {
            0.0
        }
    }
}

/// A single-thread kernel-variant comparison: the shipped baseline
/// kernel against an alternative implementation of the same product
/// (blocked vs scalar matmul, fused vs unfused spmm chain). Both run on
/// the calling thread, so the ratio is a pure kernel-quality number that
/// is meaningful even on a one-core host where pool speedups are not.
#[derive(Clone, Debug)]
pub struct VariantTiming {
    pub op: &'static str,
    pub baseline: &'static str,
    pub variant: &'static str,
    pub baseline_ns: f64,
    pub variant_ns: f64,
}

impl VariantTiming {
    /// Baseline / variant ratio (>1 means the variant is faster).
    pub fn speedup(&self) -> f64 {
        if self.variant_ns > 0.0 {
            self.baseline_ns / self.variant_ns
        } else {
            0.0
        }
    }
}

/// Median of `samples` timed runs of `f`, in ns.
fn median_ns(samples: usize, mut f: impl FnMut()) -> f64 {
    // one untimed warm-up pass so allocators and the pool are hot
    f();
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as f64
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = times.len();
    if n % 2 == 1 {
        times[n / 2]
    } else {
        0.5 * (times[n / 2 - 1] + times[n / 2])
    }
}

fn random_graph(n: usize, m: usize, seed: u64) -> Topology {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(m + n);
    for v in 1..n as u32 {
        edges.push((rng.random_range(0..v), v));
    }
    while edges.len() < m {
        let u = rng.random_range(0..n as u32);
        let v = rng.random_range(0..n as u32);
        if u != v {
            edges.push((u, v));
        }
    }
    Topology::from_edges(n, &edges)
}

/// The host's available parallelism (1 when it cannot be determined).
pub fn host_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The thread count the parallel half of the comparison uses:
/// `MG_NUM_THREADS` if set, else [`host_threads`] — never oversubscribed
/// by default, so the checked-in report's speedups are real.
pub fn pool_threads() -> usize {
    mg_runtime::parse_threads(
        std::env::var("MG_NUM_THREADS").ok().as_deref(),
        host_threads(),
    )
}

/// Time every hot kernel serial-vs-parallel. `samples` is the number of
/// timed repetitions per kernel (the median is reported).
pub fn run_suite(threads: usize, samples: usize) -> Vec<OpTiming> {
    let serial = Arc::new(Pool::new(1));
    let pool = Arc::new(Pool::new(threads));
    let mut rng = StdRng::seed_from_u64(0);

    let a512 = Matrix::uniform(512, 512, -1.0, 1.0, &mut rng);
    let b512 = Matrix::uniform(512, 512, -1.0, 1.0, &mut rng);
    let g = random_graph(2000, 8000, 1);
    let norm = gcn_norm(&g);
    let x = Matrix::uniform(2000, 64, -1.0, 1.0, &mut rng);
    let big = Matrix::uniform(1000, 512, -1.0, 1.0, &mut rng);

    let mut out = Vec::new();
    let mut record = |op: &'static str, f: &dyn Fn()| {
        let serial_ns = with_pool(serial.clone(), || median_ns(samples, f));
        let parallel_ns = with_pool(pool.clone(), || median_ns(samples, f));
        out.push(OpTiming {
            op,
            serial_ns,
            parallel_ns,
        });
    };

    record("matmul_512x512x512", &|| {
        black_box(a512.matmul(&b512));
    });
    record("matmul_tn_512", &|| {
        black_box(a512.matmul_tn(&b512));
    });
    record("matmul_nt_512", &|| {
        black_box(a512.matmul_nt(&b512));
    });
    record("spmm_2k_nodes_8k_edges_d64", &|| {
        black_box(norm.csr.spmm(&norm.values, &x));
    });
    record("spmm_t_2k_nodes_8k_edges_d64", &|| {
        black_box(norm.csr.spmm_t(&norm.values, &x));
    });
    record("map_512k_elems", &|| {
        black_box(big.map(|v| (v * 0.5).tanh()));
    });
    record("zip_512k_elems", &|| {
        black_box(big.zip(&big, |p, q| p * q + 0.5 * p));
    });
    out
}

/// Time the kernel variants single-threaded: the blocked matmul family
/// against the scalar kernels at 512³, and the fused spmm+bias+ReLU
/// against the unfused three-pass chain the GCN layer used to run
/// (spmm, then a bias broadcast materialising the pre-activation, then
/// an elementwise ReLU). The blocked entry points are always compiled,
/// so this works in every feature mode.
pub fn run_variant_suite(samples: usize) -> Vec<VariantTiming> {
    let mut rng = StdRng::seed_from_u64(0);
    let a512 = Matrix::uniform(512, 512, -1.0, 1.0, &mut rng);
    let b512 = Matrix::uniform(512, 512, -1.0, 1.0, &mut rng);
    let g = random_graph(2000, 8000, 1);
    let norm = gcn_norm(&g);
    let x = Matrix::uniform(2000, 64, -1.0, 1.0, &mut rng);
    let bias: Vec<f64> = (0..64).map(|_| rng.random_range(-1.0..1.0)).collect();

    let mut out = Vec::new();
    let mut record = |op: &'static str,
                      baseline: &'static str,
                      variant: &'static str,
                      base_f: &dyn Fn(),
                      var_f: &dyn Fn()| {
        let baseline_ns = median_ns(samples, base_f);
        let variant_ns = median_ns(samples, var_f);
        out.push(VariantTiming {
            op,
            baseline,
            variant,
            baseline_ns,
            variant_ns,
        });
    };

    record(
        "matmul_512x512x512",
        "scalar",
        "blocked",
        &|| {
            black_box(a512.matmul_serial(&b512));
        },
        &|| {
            black_box(a512.matmul_blocked(&b512));
        },
    );
    record(
        "matmul_tn_512",
        "scalar",
        "blocked",
        &|| {
            black_box(a512.matmul_tn_serial(&b512));
        },
        &|| {
            black_box(a512.matmul_tn_blocked(&b512));
        },
    );
    record(
        "matmul_nt_512",
        "scalar",
        "blocked",
        &|| {
            black_box(a512.matmul_nt_serial(&b512));
        },
        &|| {
            black_box(a512.matmul_nt_blocked(&b512));
        },
    );
    record(
        "spmm_bias_relu_2k_nodes_8k_edges_d64",
        "unfused_chain",
        "fused",
        &|| {
            let agg = norm.csr.spmm_serial(&norm.values, &x);
            let z = Matrix::from_fn(agg.rows(), agg.cols(), |i, j| agg[(i, j)] + bias[j]);
            black_box(z.map(|v| v.max(0.0)));
        },
        &|| {
            black_box(norm.csr.spmm_bias_relu_serial(&norm.values, &x, &bias));
        },
    );
    out
}

/// The oversubscription warning for a given configuration, if any.
pub fn oversubscription_warning(pool: usize, host: usize) -> Option<String> {
    (pool > host).then(|| {
        format!(
            "pool_threads ({pool}) > host_threads ({host}): pool threads time-slice \
             the same cores, so these timings measure oversubscription, not parallel \
             speedup; speedups are suppressed. Regenerate on a host with >= {pool} cores."
        )
    })
}

/// Render the suite results as the `BENCH_ops.json` document.
///
/// When the pool is wider than the host the report refuses to claim
/// speedups: every op gets `"speedup": null` and a top-level `warning`
/// explains why (see [`oversubscription_warning`]).
pub fn to_json(threads: usize, timings: &[OpTiming], variants: &[VariantTiming]) -> String {
    let host = host_threads();
    let warning = oversubscription_warning(threads, host);
    let entries: Vec<String> = timings
        .iter()
        .map(|t| {
            let speedup = match warning {
                Some(_) => "null".to_string(),
                None => format!("{:.3}", t.speedup()),
            };
            format!(
                "    {{\"op\": \"{}\", \"serial_ns\": {:.0}, \"parallel_ns\": {:.0}, \
                 \"speedup\": {speedup}}}",
                t.op, t.serial_ns, t.parallel_ns,
            )
        })
        .collect();
    // Variant comparisons are single-threaded, so their speedups are
    // real regardless of oversubscription.
    let variant_entries: Vec<String> = variants
        .iter()
        .map(|v| {
            format!(
                "    {{\"op\": \"{}\", \"baseline\": \"{}\", \"variant\": \"{}\", \
                 \"baseline_ns\": {:.0}, \"variant_ns\": {:.0}, \"speedup\": {:.3}}}",
                v.op,
                v.baseline,
                v.variant,
                v.baseline_ns,
                v.variant_ns,
                v.speedup(),
            )
        })
        .collect();
    let warning_line = match &warning {
        Some(w) => format!("  \"warning\": \"{w}\",\n"),
        None => String::new(),
    };
    format!(
        "{{\n  \"host_threads\": {host},\n  \"pool_threads\": {threads},\n  \
         \"parallel_feature\": {},\n  \"fast_kernels_feature\": {},\n{warning_line}  \
         \"ops\": [\n{}\n  ],\n  \"kernel_variants\": [\n{}\n  ]\n}}\n",
        cfg!(feature = "parallel"),
        cfg!(feature = "fast-kernels"),
        entries.join(",\n"),
        variant_entries.join(",\n")
    )
}

/// Run the suite with default settings and write `BENCH_ops.json` (path
/// overridable via `MG_BENCH_OPS_JSON`). Prints a short summary table to
/// stderr. Skips silently when `MG_BENCH_OPS_JSON` is set to `skip`.
pub fn emit_default() {
    let path = std::env::var("MG_BENCH_OPS_JSON").unwrap_or_else(|_| "BENCH_ops.json".into());
    if path == "skip" {
        return;
    }
    let threads = pool_threads();
    let timings = run_suite(threads, 7);
    for t in &timings {
        eprintln!(
            "ops {:<30} serial {:>12.0} ns   parallel({threads}t) {:>12.0} ns   x{:.2}",
            t.op,
            t.serial_ns,
            t.parallel_ns,
            t.speedup()
        );
    }
    let variants = run_variant_suite(7);
    for v in &variants {
        eprintln!(
            "var {:<38} {:<13} {:>12.0} ns   {:<8} {:>12.0} ns   x{:.2}",
            v.op,
            v.baseline,
            v.baseline_ns,
            v.variant,
            v.variant_ns,
            v.speedup()
        );
    }
    if let Some(w) = oversubscription_warning(threads, host_threads()) {
        eprintln!("warning: {w}");
    }
    let json = to_json(threads, &timings, &variants);
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_reports_all_ops_and_valid_json_shape() {
        let timings = run_suite(2, 1);
        assert!(timings.len() >= 5);
        assert!(timings
            .iter()
            .all(|t| t.serial_ns > 0.0 && t.parallel_ns > 0.0));
        let json = to_json(2, &timings, &[]);
        assert!(json.contains("\"pool_threads\": 2"));
        assert!(json.contains("\"op\": \"matmul_512x512x512\""));
        assert!(json.contains("\"speedup\""));
        assert!(json.contains("\"kernel_variants\""));
    }

    #[test]
    fn variant_suite_covers_blocked_and_fused() {
        let variants = run_variant_suite(1);
        let ops: Vec<_> = variants.iter().map(|v| v.op).collect();
        assert!(ops.contains(&"matmul_512x512x512"));
        assert!(ops.contains(&"matmul_tn_512"));
        assert!(ops.contains(&"matmul_nt_512"));
        assert!(ops.contains(&"spmm_bias_relu_2k_nodes_8k_edges_d64"));
        assert!(variants
            .iter()
            .all(|v| v.baseline_ns > 0.0 && v.variant_ns > 0.0));
        let json = to_json(1, &[], &variants);
        assert!(json.contains("\"baseline\": \"scalar\""));
        assert!(json.contains("\"variant\": \"fused\""));
    }

    #[test]
    fn pool_threads_defaults_to_host_without_env() {
        // MG_NUM_THREADS may be set by the harness; only check the
        // fallback arithmetic here. The default must track the host, not
        // a fixed constant: a 4-thread pool on a 1-core container only
        // manufactures slowdowns.
        let host = host_threads();
        assert_eq!(mg_runtime::parse_threads(None, host), host);
        assert_eq!(mg_runtime::parse_threads(Some("6"), host), 6);
    }

    #[test]
    fn json_refuses_speedup_claims_when_oversubscribed() {
        let timings = vec![OpTiming {
            op: "fake_op",
            serial_ns: 100.0,
            parallel_ns: 50.0,
        }];
        // pool wider than the host: warning present, speedups nulled
        let over = to_json(host_threads() + 1, &timings, &[]);
        assert!(over.contains("\"warning\""));
        assert!(over.contains("oversubscription"));
        assert!(over.contains("\"speedup\": null"));
        assert!(!over.contains("\"speedup\": 2.000"));
        // a pool the host can actually run: numeric speedup, no warning
        let ok = to_json(1, &timings, &[]);
        assert!(!ok.contains("\"warning\""));
        assert!(ok.contains("\"speedup\": 2.000"));
        assert!(ok.contains(&format!("\"host_threads\": {}", host_threads())));
    }
}

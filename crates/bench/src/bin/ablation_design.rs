//! Design-choice ablations beyond the paper's tables (DESIGN.md calls
//! these out): the fitness linearity term `f^c` of Eq. 2 and the
//! ego-network radius λ.
//!
//! These probe *why* AdamGNN's pooling works: `f^c` injects feature
//! similarity into the hyper-node formation weights, and λ controls how
//! much of the neighbourhood one hyper-node swallows.

use adamgnn_core::{kl_loss, reconstruction_loss, total_loss, AdamGnnConfig, AdamGnnNode};
use mg_bench::{mean, BenchConfig};
use mg_data::{make_node_dataset, NodeDatasetKind, Split};
use mg_eval::{accuracy, pct, TextTable};
use mg_nn::GraphCtx;
use mg_tensor::{AdamConfig, ParamStore, Tape};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::rc::Rc;

fn run_variant(
    cfg: &BenchConfig,
    ds: &mg_data::NodeDataset,
    lambda: usize,
    linearity: bool,
    seed: u64,
) -> f64 {
    let train_cfg = cfg.train(seed, 3);
    let ctx = GraphCtx::new(ds.graph.clone(), ds.features.clone());
    let split =
        Split::random_80_10_10(ds.n(), seed ^ 0x5eed).expect("dataset large enough to split");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut store = ParamStore::new();
    let mut mcfg = AdamGnnConfig::new(ds.feat_dim(), train_cfg.hidden, 3);
    mcfg.lambda = lambda;
    mcfg.linearity = linearity;
    let model = AdamGnnNode::new(&mut store, mcfg, ds.num_classes, &mut rng);
    let adam = AdamConfig::with_lr(train_cfg.lr);
    let targets = Rc::new(ds.labels.clone());
    let train_nodes = Rc::new(split.train.clone());
    let mut best_val = -1.0;
    let mut best_test = 0.0;
    for _ in 0..train_cfg.epochs {
        {
            let tape = Tape::new();
            let bind = store.bind(&tape);
            let (logits, out) = model.forward_full(&tape, &bind, &ctx, true, &mut rng);
            let task = tape.cross_entropy(logits, targets.clone(), train_nodes.clone());
            let kl = kl_loss(&tape, out.h, &out.egos_l1);
            let recon = reconstruction_loss(&tape, out.h, &ctx.graph, &mut rng);
            let loss = total_loss(&tape, task, kl, recon, &train_cfg.weights);
            let mut grads = tape.backward(loss);
            store.step(&mut grads, &bind, &adam);
        }
        let tape = Tape::new();
        let bind = store.bind(&tape);
        let (logits, _) = model.forward_full(&tape, &bind, &ctx, false, &mut rng);
        let lv = tape.value_cloned(logits);
        let val = accuracy(&lv, &ds.labels, &split.val);
        if val > best_val {
            best_val = val;
            best_test = accuracy(&lv, &ds.labels, &split.test);
        }
    }
    best_test
}

fn main() {
    let cfg = BenchConfig::from_env();
    cfg.banner("Design ablations: fitness linearity term and ego radius λ (node classification)");
    let datasets = [NodeDatasetKind::Cora, NodeDatasetKind::Acm]
        .map(|k| make_node_dataset(k, &cfg.node_gen()));

    let variants: [(&str, usize, bool); 3] = [
        ("full fitness, λ=1 (paper)", 1, true),
        ("no linearity term f^c", 1, false),
        ("full fitness, λ=2", 2, true),
    ];
    let mut table = TextTable::new(&["Variant", "Cora NC", "ACM NC"]);
    for (name, lambda, linearity) in variants {
        let mut row = vec![name.to_string()];
        for ds in &datasets {
            let accs: Vec<f64> = (0..cfg.seeds)
                .map(|s| run_variant(&cfg, ds, lambda, linearity, s))
                .collect();
            row.push(pct(mean(&accs)));
            eprint!(".");
        }
        eprintln!(" {name}");
        table.row(row);
    }
    println!("{}", table.render());
}

//! Traced-training report: runs one seeded node-classification job with
//! `MG_TRACE` active, validates the emitted JSONL trace, and writes
//! `BENCH_train.json` with per-epoch timings.
//!
//! ```text
//! MG_TRACE=/tmp/trace.jsonl cargo run --release -p mg-bench --bin train_report
//! ```
//!
//! When `MG_TRACE` is unset a temp-file default is installed (the
//! binary's purpose is to exercise the trace sink). `MG_BENCH_TRAIN_JSON`
//! overrides the report path; `skip` suppresses the file. Exits non-zero
//! when the trace fails schema validation.

fn main() {
    std::process::exit(mg_bench::trainreport::emit_default());
}

//! Pooling-operator benchmark matrix: trains node classification, link
//! prediction and graph classification once per shipped `PoolingKind`
//! (AdamGNN, ASAP, SpaPool) under identical settings and writes
//! `BENCH_pooling.json` — the repo's Table-4-style operator comparison.
//!
//! ```text
//! cargo run --release -p mg-bench --bin pooling_report
//! ```
//!
//! `MG_BENCH_POOLING_JSON` overrides the report path; `skip` suppresses
//! the file. Exits non-zero when any cell produces a non-finite loss or
//! metric.

fn main() {
    std::process::exit(mg_bench::poolingreport::emit_default());
}

//! Standalone inference server: obtains the benchmark checkpoint
//! (reusing `MG_CKPT_PATH` when it names a compatible one, training the
//! small seeded job otherwise) and serves it over HTTP until killed.
//!
//! ```text
//! MG_SERVE_ADDR=127.0.0.1:7878 cargo run --release -p mg-bench --bin serve
//! curl -s localhost:7878/healthz
//! curl -s localhost:7878/v1/nodes -d '{"ids": [0, 1, 2]}'
//! ```
//!
//! All `MG_SERVE_*` knobs apply (see `ServeConfig::from_env`); with
//! `MG_TRACE` set, every request appends a `serve` record.

use mg_eval::FrozenModel;
use mg_nn::GraphCtx;
use mg_serve::{ServeConfig, Server};

fn main() {
    let scale = mg_bench::env_or("REPRO_NODE_SCALE", 0.08);
    let epochs = mg_bench::env_or("REPRO_EPOCHS", 8);
    let cfg = ServeConfig::from_env();
    let server = match Server::start(cfg, move || {
        let (path, ds, trained) = mg_bench::servebench::prepare_checkpoint(scale, epochs)
            .map_err(|detail| mg_tensor::MgError::InvalidInput { detail })?;
        eprintln!(
            "serve: checkpoint {}{}",
            path.display(),
            if trained {
                " (trained this run)"
            } else {
                " (reused)"
            }
        );
        let fm = FrozenModel::load(&path)?;
        let ctx = GraphCtx::new(ds.graph.clone(), ds.features.clone());
        Ok((fm, ctx))
    }) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("serve: failed to start: {e}");
            std::process::exit(1);
        }
    };
    eprintln!("serve: listening on {}", server.addr());
    // serve until the process is killed
    loop {
        std::thread::park();
    }
}

//! Regenerate `BENCH_mem.json`: retained-vs-checkpointed peak tape
//! memory on the three golden fixtures. See `mg_bench::memreport`.

fn main() {
    std::process::exit(mg_bench::memreport::emit_default());
}

//! Table 5 — flyback-aggregator ablation on graph classification:
//! NCI1, NCI109 and Mutagenicity, with and without the flyback.
//!
//! Paper reference (accuracy %):
//! ```text
//! AdamGNN                 NCI1   NCI109  Mutagenicity
//! No flyback aggregation  75.54  77.49   79.89
//! Full model              79.77  79.36   82.04
//! ```

use mg_bench::{mean, BenchConfig};
use mg_data::{make_graph_dataset, GraphDatasetKind};
use mg_eval::{pct, GraphModelKind, SessionKind, TextTable, TrainSession};

fn main() {
    let cfg = BenchConfig::from_env();
    cfg.banner("Table 5: flyback-aggregation ablation (graph classification accuracy)");
    let datasets = [
        GraphDatasetKind::Nci1,
        GraphDatasetKind::Nci109,
        GraphDatasetKind::Mutagenicity,
    ];
    let ds: Vec<_> = datasets
        .iter()
        .map(|&k| make_graph_dataset(k, &cfg.graph_gen()))
        .collect();

    let mut table = TextTable::new(&["AdamGNN", "NCI1", "NCI109", "Mutagenicity"]);
    for (name, flyback) in [("No flyback aggregation", false), ("Full model", true)] {
        let mut row = vec![name.to_string()];
        for d in &ds {
            let accs: Vec<f64> = (0..cfg.seeds)
                .map(|s| {
                    let mut t = cfg.train(s, 3);
                    t.flyback = flyback;
                    TrainSession::new(
                        SessionKind::GraphClassification(GraphModelKind::AdamGnn),
                        &t,
                    )
                    .traced(false)
                    .run(d)
                    .expect("graph classification run")
                    .test_metric
                })
                .collect();
            row.push(pct(mean(&accs)));
            eprint!(".");
        }
        eprintln!(" {name}");
        table.row(row);
    }
    println!("{}", table.render());
}

//! Table 4 — average per-epoch training time (seconds) of the pooling
//! graph classifiers on NCI1, NCI109 and PROTEINS.
//!
//! Paper reference (V100 GPU, full datasets; only *relative* ordering is
//! expected to transfer to this CPU reproduction):
//! ```text
//! Models      NCI1  NCI109 PROTEINS
//! DIFFPOOL    6.23  3.22   3.65
//! SAGPOOL     1.95  1.55   0.45
//! TOPKPOOL    4.58  4.45   1.46
//! STRUCTPOOL  6.31  6.04   1.34
//! AdamGNN     3.62  3.24   1.03
//! ```

use mg_bench::BenchConfig;
use mg_data::{make_graph_dataset, GraphDatasetKind};
use mg_eval::graph_tasks::build_contexts;
use mg_eval::{GraphModelKind, SessionInput, SessionKind, TextTable, TrainSession};

fn main() {
    let cfg = BenchConfig::from_env();
    cfg.banner("Table 4: average epoch time (seconds) on the graph classification task");
    let datasets = [
        GraphDatasetKind::Nci1,
        GraphDatasetKind::Nci109,
        GraphDatasetKind::Proteins,
    ];
    let models = [
        GraphModelKind::DiffPool,
        GraphModelKind::SagPool,
        GraphModelKind::TopKPool,
        GraphModelKind::StructPool,
        GraphModelKind::AdamGnn,
    ];
    let contexts: Vec<_> = datasets
        .iter()
        .map(|&kind| {
            let ds = make_graph_dataset(kind, &cfg.graph_gen());
            (build_contexts(&ds), ds.feat_dim)
        })
        .collect();

    let mut table = TextTable::new(&["Models", "NCI1", "NCI109", "PROTEINS"]);
    for model in models {
        let mut row = vec![model.name().to_string()];
        for (ctxs, feat_dim) in &contexts {
            // a handful of epochs is enough for a stable per-epoch mean
            let mut t = cfg.train(0, 3);
            t.epochs = 5;
            t.patience = 5;
            let res = TrainSession::new(SessionKind::GraphClassification(model), &t)
                .traced(false)
                .run(SessionInput::Prebuilt {
                    contexts: ctxs,
                    feat_dim: *feat_dim,
                })
                .expect("graph classification run");
            row.push(format!("{:.3}", res.epoch_seconds.unwrap()));
            eprint!(".");
        }
        eprintln!(" {}", model.name());
        table.row(row);
    }
    println!("{}", table.render());
    println!("(absolute values are CPU seconds at the benchmark scale; compare rows, not the paper's GPU numbers)");
}

//! Standalone kernel-timing report: times every mg-runtime-dispatched
//! kernel serial-vs-parallel and writes `BENCH_ops.json`.
//!
//! Faster than the full criterion `ops` bench when only the JSON report
//! is wanted:
//!
//! ```text
//! cargo run --release -p mg-bench --features parallel --bin ops_report
//! ```
//!
//! `MG_NUM_THREADS` sizes the parallel pool (default: the host's
//! available parallelism); `MG_BENCH_OPS_JSON` overrides the output
//! path. When the pool is wider than the host the report suppresses
//! speedup claims — see `mg_bench::opsbench`.

fn main() {
    mg_bench::opsbench::emit_default();
}

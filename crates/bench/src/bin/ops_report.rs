//! Standalone kernel-timing report: times every mg-runtime-dispatched
//! kernel serial-vs-parallel and writes `BENCH_ops.json`.
//!
//! Faster than the full criterion `ops` bench when only the JSON report
//! is wanted:
//!
//! ```text
//! cargo run --release -p mg-bench --features parallel --bin ops_report
//! ```
//!
//! `MG_NUM_THREADS` sizes the parallel pool (default 4);
//! `MG_BENCH_OPS_JSON` overrides the output path.

fn main() {
    mg_bench::opsbench::emit_default();
}

//! Sampled-minibatch quality + million-node scalability report.
//! See [`mg_bench::samplereport`].

fn main() {
    std::process::exit(mg_bench::samplereport::emit_default());
}

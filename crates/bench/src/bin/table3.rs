//! Table 3 — ablation of the loss components on three task/dataset pairs:
//! DBLP link prediction, Citeseer node classification, Mutagenicity graph
//! classification.
//!
//! Paper reference:
//! ```text
//!                        DBLP(LP)  Citeseer(NC)  Mutagenicity(GC)
//! AdamGNN + L_task       0.956     76.63         79.04
//! AdamGNN + L_task+L_KL  -         77.17         78.94
//! AdamGNN + L_task+L_R   -         77.64         80.65
//! AdamGNN (Full model)   0.965     78.92         82.04
//! ```
//! (For LP, `L_task` equals `L_R`, so the two middle rows do not apply.)

use adamgnn_core::LossWeights;
use mg_bench::{mean, BenchConfig};
use mg_data::{make_graph_dataset, make_node_dataset, GraphDatasetKind, NodeDatasetKind};
use mg_eval::{auc, pct, GraphModelKind, NodeModelKind, SessionKind, TextTable, TrainSession};

fn main() {
    let cfg = BenchConfig::from_env();
    cfg.banner("Table 3: loss-component ablation");
    let dblp = make_node_dataset(NodeDatasetKind::Dblp, &cfg.node_gen());
    let citeseer = make_node_dataset(NodeDatasetKind::Citeseer, &cfg.node_gen());
    let muta = make_graph_dataset(GraphDatasetKind::Mutagenicity, &cfg.graph_gen());

    let variants: [(&str, LossWeights); 4] = [
        (
            "AdamGNN + L_task",
            LossWeights {
                gamma: 0.0,
                delta: 0.0,
            },
        ),
        (
            "AdamGNN + L_task + L_KL",
            LossWeights {
                gamma: 0.1,
                delta: 0.0,
            },
        ),
        (
            "AdamGNN + L_task + L_R",
            LossWeights {
                gamma: 0.0,
                delta: 0.01,
            },
        ),
        ("AdamGNN (Full model)", LossWeights::default()),
    ];

    let mut table = TextTable::new(&["Loss", "DBLP (LP)", "Citeseer (NC)", "Mutagenicity (GC)"]);
    for (name, weights) in variants {
        let mk = |seed: u64, levels: usize| {
            let mut t = cfg.train(seed, levels);
            t.weights = weights;
            t
        };
        // LP only distinguishes the KL toggle (its task loss *is* L_R)
        let run_lp = (weights.gamma == 0.0 && weights.delta == 0.0) || name.contains("Full");
        let lp_cell = if run_lp {
            let runs: Vec<f64> = (0..cfg.seeds)
                .map(|s| {
                    TrainSession::new(
                        SessionKind::LinkPrediction(NodeModelKind::AdamGnn),
                        &mk(s, 4),
                    )
                    .traced(false)
                    .run(&dblp)
                    .expect("link prediction run")
                    .test_metric
                })
                .collect();
            auc(mean(&runs))
        } else {
            "-".to_string()
        };
        let nc: Vec<f64> = (0..cfg.seeds)
            .map(|s| {
                TrainSession::new(
                    SessionKind::NodeClassification(NodeModelKind::AdamGnn),
                    &mk(s, 3),
                )
                .traced(false)
                .run(&citeseer)
                .expect("node classification run")
                .test_metric
            })
            .collect();
        let gc: Vec<f64> = (0..cfg.seeds)
            .map(|s| {
                TrainSession::new(
                    SessionKind::GraphClassification(GraphModelKind::AdamGnn),
                    &mk(s, 3),
                )
                .traced(false)
                .run(&muta)
                .expect("graph classification run")
                .test_metric
            })
            .collect();
        table.row(vec![
            name.to_string(),
            lp_cell,
            pct(mean(&nc)),
            pct(mean(&gc)),
        ]);
        eprintln!("done: {name}");
    }
    println!("{}", table.render());
}

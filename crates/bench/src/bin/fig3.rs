//! Figure 3 (appendix) — the motivation for adaptive selection: with
//! Top-k selection, the fraction of the graph's nodes covered by the
//! selected ego-networks depends strongly on the ratio `k`, so important
//! node features can simply be dropped.
//!
//! The paper plots coverage against the selection ratio for its node
//! datasets; the reproduction prints one series per dataset plus the
//! coverage AdamGNN's adaptive local-maximum selection reaches with no
//! ratio hyper-parameter at all (always 100% — retained nodes are kept).

use mg_bench::BenchConfig;
use mg_data::{make_node_dataset, NodeDatasetKind};
use mg_eval::TextTable;
use mg_nn::topk_coverage;

fn main() {
    let cfg = BenchConfig::from_env();
    cfg.banner("Figure 3: node coverage of Top-k selection vs selection ratio");
    let ratios = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];

    let mut header = vec!["Dataset".to_string()];
    for r in ratios {
        header.push(format!("k={r:.1}"));
    }
    header.push("adaptive".into());
    let refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = TextTable::new(&refs);

    for kind in NodeDatasetKind::all() {
        let ds = make_node_dataset(kind, &cfg.node_gen());
        let mut row = vec![ds.name.clone()];
        for r in ratios {
            row.push(format!("{:.2}", topk_coverage(&ds.graph, r, 1)));
        }
        // AdamGNN's pooling never drops nodes: selected ego-networks plus
        // retained nodes always cover the whole graph
        row.push("1.00".into());
        table.row(row);
    }
    println!("{}", table.render());
    println!("Low ratios leave large parts of the graph uncovered — the");
    println!("information loss AdamGNN's hyper-parameter-free selection avoids.");
}

//! Extension experiment (not a paper table): node clustering, the third
//! node-level task the paper's introduction motivates. Embeddings are
//! trained unsupervised (reconstruction + KL) and clustered with k-means;
//! the score is NMI against the ground-truth classes.

use mg_bench::{mean, BenchConfig};
use mg_data::{make_node_dataset, NodeDatasetKind};
use mg_eval::{NodeModelKind, SessionKind, TextTable, TrainSession};

fn main() {
    let cfg = BenchConfig::from_env();
    cfg.banner("Extension: unsupervised node clustering (NMI)");
    let datasets = [
        NodeDatasetKind::Emails,
        NodeDatasetKind::Cora,
        NodeDatasetKind::Acm,
    ]
    .map(|k| make_node_dataset(k, &cfg.node_gen()));

    let mut table = TextTable::new(&["Models", "Emails", "Cora", "ACM"]);
    for model in [
        NodeModelKind::Gcn,
        NodeModelKind::GraphSage,
        NodeModelKind::AdamGnn,
    ] {
        let mut row = vec![model.name().to_string()];
        for ds in &datasets {
            let scores: Vec<f64> = (0..cfg.seeds)
                .map(|s| {
                    TrainSession::new(SessionKind::NodeClustering(model), &cfg.train(s, 3))
                        .traced(false)
                        .run(ds)
                        .expect("clustering run")
                        .test_metric
                })
                .collect();
            row.push(format!("{:.3}", mean(&scores)));
            eprint!(".");
        }
        eprintln!(" {}", model.name());
        table.row(row);
    }
    println!("{}", table.render());
}

//! Frozen-model inference report: obtains a checkpoint (reusing a
//! compatible `MG_CKPT_PATH`, training a small seeded job otherwise),
//! loads it through `FrozenModel`, measures forward-pass throughput, and
//! writes `BENCH_infer.json`.
//!
//! ```text
//! cargo run --release -p mg-bench --bin infer
//! ```
//!
//! `MG_BENCH_INFER_JSON` overrides the report path; `skip` suppresses
//! the file. With `MG_TRACE` set, one `infer` record is appended to the
//! JSONL trace. Exits non-zero when loading or serving fails.

fn main() {
    std::process::exit(mg_bench::inferbench::emit_default());
}

//! Table 2 — node-wise tasks: node classification (accuracy %) and link
//! prediction (ROC-AUC), 6 models × 6 datasets.
//!
//! Paper reference:
//! ```text
//! Models     ACM          Citeseer     Cora         Emails       DBLP         Wiki
//!            NC     LP    NC     LP    NC     LP    NC     LP    NC     LP    NC     LP
//! GCN        92.25  .975  76.13  .887  88.90  .918  85.03  .930  82.68  .904  69.03  .523
//! GraphSAGE  92.48  .972  76.75  .884  88.92  .908  85.80  .923  83.20  .889  71.83  .577
//! GAT        91.69  .968  76.96  .910  88.33  .912  84.67  .930  84.04  .889  56.50  .594
//! GIN        90.66  .787  76.39  .808  87.74  .878  87.18  .859  82.54  .820  66.29  .501
//! TOPKPOOL   93.42  .890  75.59  .918  87.68  .932  89.16  .936  85.27  .934  71.33  .734
//! AdamGNN    93.61  .988  78.92  .970  90.92  .948  91.88  .937  88.36  .965  73.37  .920
//! ```

use mg_bench::{mean, BenchConfig};
use mg_data::{make_node_dataset, NodeDatasetKind};
use mg_eval::{auc, pct, NodeModelKind, SessionKind, TextTable, TrainSession};

fn main() {
    let cfg = BenchConfig::from_env();
    cfg.banner("Table 2: node classification (NC, accuracy %) and link prediction (LP, ROC-AUC)");
    let datasets: Vec<_> = NodeDatasetKind::all()
        .into_iter()
        .map(|kind| (kind, make_node_dataset(kind, &cfg.node_gen())))
        .collect();

    let mut header: Vec<String> = vec!["Models".into()];
    for (kind, _) in &datasets {
        header.push(format!("{} NC", kind.name()));
        header.push(format!("{} LP", kind.name()));
    }
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = TextTable::new(&header_refs);

    for model in NodeModelKind::all() {
        let mut row = vec![model.name().to_string()];
        for (_, ds) in &datasets {
            let nc: Vec<f64> = (0..cfg.seeds)
                .map(|s| {
                    TrainSession::new(SessionKind::NodeClassification(model), &cfg.train(s, 3))
                        .traced(false)
                        .run(ds)
                        .expect("node classification run")
                        .test_metric
                })
                .collect();
            let lp: Vec<f64> = (0..cfg.seeds)
                .map(|s| {
                    TrainSession::new(SessionKind::LinkPrediction(model), &cfg.train(s, 4))
                        .traced(false)
                        .run(ds)
                        .expect("link prediction run")
                        .test_metric
                })
                .collect();
            row.push(pct(mean(&nc)));
            row.push(auc(mean(&lp)));
            eprint!(".");
        }
        eprintln!(" {}", model.name());
        table.row(row);
    }
    println!("{}", table.render());
}

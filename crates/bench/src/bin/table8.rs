//! Table 8 (appendix) — impact of the number of granularity levels
//! `K ∈ {2..5}` on six dataset/task combinations.
//!
//! Paper reference:
//! ```text
//! #Levels  DBLP   Wiki   ACM    Citeseer Emails Mutagenicity
//!          LP     LP     NC     NC       NC     GC
//! 2        0.951  0.912  92.60  77.68    86.83  78.16
//! 3        0.958  0.913  93.38  74.67    91.88  82.04
//! 4        0.959  0.917  93.61  76.15    90.61  81.58
//! 5        0.965  0.920  90.84  78.92    -      81.01
//! ```

use mg_bench::{mean, BenchConfig};
use mg_data::{make_graph_dataset, make_node_dataset, GraphDatasetKind, NodeDatasetKind};
use mg_eval::{auc, pct, GraphModelKind, NodeModelKind, SessionKind, TextTable, TrainSession};

fn main() {
    let cfg = BenchConfig::from_env();
    cfg.banner("Table 8: impact of the number of granularity levels");
    let dblp = make_node_dataset(NodeDatasetKind::Dblp, &cfg.node_gen());
    let wiki = make_node_dataset(NodeDatasetKind::Wiki, &cfg.node_gen());
    let acm = make_node_dataset(NodeDatasetKind::Acm, &cfg.node_gen());
    let citeseer = make_node_dataset(NodeDatasetKind::Citeseer, &cfg.node_gen());
    let emails = make_node_dataset(NodeDatasetKind::Emails, &cfg.node_gen());
    let muta = make_graph_dataset(GraphDatasetKind::Mutagenicity, &cfg.graph_gen());

    let mut table = TextTable::new(&[
        "# Levels",
        "DBLP LP",
        "Wiki LP",
        "ACM NC",
        "Citeseer NC",
        "Emails NC",
        "Mutagenicity GC",
    ]);
    for levels in 2..=5usize {
        let lp = |ds| {
            let xs: Vec<f64> = (0..cfg.seeds)
                .map(|s| {
                    TrainSession::new(
                        SessionKind::LinkPrediction(NodeModelKind::AdamGnn),
                        &cfg.train(s, levels),
                    )
                    .traced(false)
                    .run(ds)
                    .expect("link prediction run")
                    .test_metric
                })
                .collect();
            auc(mean(&xs))
        };
        let nc = |ds| {
            let xs: Vec<f64> = (0..cfg.seeds)
                .map(|s| {
                    TrainSession::new(
                        SessionKind::NodeClassification(NodeModelKind::AdamGnn),
                        &cfg.train(s, levels),
                    )
                    .traced(false)
                    .run(ds)
                    .expect("node classification run")
                    .test_metric
                })
                .collect();
            pct(mean(&xs))
        };
        let gc: Vec<f64> = (0..cfg.seeds)
            .map(|s| {
                TrainSession::new(
                    SessionKind::GraphClassification(GraphModelKind::AdamGnn),
                    &cfg.train(s, levels),
                )
                .traced(false)
                .run(&muta)
                .expect("graph classification run")
                .test_metric
            })
            .collect();
        table.row(vec![
            levels.to_string(),
            lp(&dblp),
            lp(&wiki),
            nc(&acm),
            nc(&citeseer),
            nc(&emails),
            pct(mean(&gc)),
        ]);
        eprintln!("done: K = {levels}");
    }
    println!("{}", table.render());
}

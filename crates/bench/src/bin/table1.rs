//! Table 1 — graph classification accuracy: 8 models × 6 datasets.
//!
//! Paper reference (accuracy %):
//! ```text
//! Models      NCI1   NCI109 D&D    MUTAG  Mutagenicity PROTEINS
//! GIN         76.17  77.31  78.05  75.11  77.24        75.37
//! 3WL-GNN     79.38  78.34  78.32  78.34  81.52        77.92
//! SORTPOOL    72.25  73.21  73.31  71.47  74.65        70.49
//! DIFFPOOL    76.47  76.17  76.16  73.61  76.30        71.90
//! TOPKPOOL    77.56  77.02  73.98  76.60  78.64        72.94
//! SAGPOOL     75.76  73.67  76.21  75.27  77.09        75.27
//! STRUCTPOOL  77.61  78.39  80.10  77.13  80.94        78.84
//! AdamGNN     79.77  79.36  81.51  80.11  82.04        77.04
//! ```

use mg_bench::{mean, BenchConfig};
use mg_data::{make_graph_dataset, GraphDatasetKind};
use mg_eval::{pct, GraphModelKind, SessionKind, TextTable, TrainSession};

fn main() {
    let cfg = BenchConfig::from_env();
    cfg.banner("Table 1: graph classification accuracy");
    let datasets: Vec<_> = GraphDatasetKind::all()
        .into_iter()
        .map(|kind| (kind, make_graph_dataset(kind, &cfg.graph_gen())))
        .collect();

    let mut header = vec!["Models"];
    for (kind, _) in &datasets {
        header.push(kind.name());
    }
    let mut table = TextTable::new(&header);

    for model in GraphModelKind::all() {
        let mut row = vec![model.name().to_string()];
        for (_, ds) in &datasets {
            let accs: Vec<f64> = (0..cfg.seeds)
                .map(|seed| {
                    TrainSession::new(SessionKind::GraphClassification(model), &cfg.train(seed, 3))
                        .traced(false)
                        .run(ds)
                        .expect("graph classification run")
                        .test_metric
                })
                .collect();
            row.push(pct(mean(&accs)));
            eprint!(".");
        }
        eprintln!(" {}", model.name());
        table.row(row);
    }
    println!("{}", table.render());
    // Kernel-level serial-vs-parallel report alongside the table (set
    // MG_BENCH_OPS_JSON=skip to suppress).
    mg_bench::opsbench::emit_default();
}

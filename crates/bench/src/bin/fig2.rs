//! Figure 2 — visualisation of the flyback attention weights `β`: for the
//! ACM and DBLP node-classification tasks, the mean attention each class's
//! nodes pay to messages from each granularity level.
//!
//! The paper's qualitative finding: different classes draw on different
//! levels (e.g. "data mining" peaks at level 1 on ACM but at level 3 on
//! DBLP), while broad classes spread attention evenly.

use adamgnn_core::{kl_loss, reconstruction_loss, total_loss};
use mg_bench::BenchConfig;
use mg_data::{make_node_dataset, NodeDataset, NodeDatasetKind, Split};
use mg_eval::TextTable;
use mg_nn::GraphCtx;
use mg_tensor::{AdamConfig, Matrix, ParamStore, Tape};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::rc::Rc;

/// Train AdamGNN for node classification and return the per-class mean
/// flyback attention (classes x levels).
fn class_attention(ds: &NodeDataset, cfg: &BenchConfig) -> Option<Matrix> {
    let train_cfg = cfg.train(0, 3);
    let ctx = GraphCtx::new(ds.graph.clone(), ds.features.clone());
    let split = Split::random_80_10_10(ds.n(), 0x5eed).expect("dataset large enough to split");
    let mut rng = StdRng::seed_from_u64(0);
    let mut store = ParamStore::new();
    let mut mcfg = adamgnn_core::AdamGnnConfig::new(ds.feat_dim(), train_cfg.hidden, 3);
    mcfg.flyback = true;
    let model = adamgnn_core::AdamGnnNode::new(&mut store, mcfg, ds.num_classes, &mut rng);
    let adam = AdamConfig::with_lr(train_cfg.lr);
    let targets = Rc::new(ds.labels.clone());
    let train_nodes = Rc::new(split.train);
    for _ in 0..train_cfg.epochs {
        let tape = Tape::new();
        let bind = store.bind(&tape);
        let (logits, out) = model.forward_full(&tape, &bind, &ctx, true, &mut rng);
        let task = tape.cross_entropy(logits, targets.clone(), train_nodes.clone());
        let kl = kl_loss(&tape, out.h, &out.egos_l1);
        let recon = reconstruction_loss(&tape, out.h, &ctx.graph, &mut rng);
        let loss = total_loss(&tape, task, kl, recon, &train_cfg.weights);
        let mut grads = tape.backward(loss);
        store.step(&mut grads, &bind, &adam);
    }
    // final forward: collect β and average per class
    let tape = Tape::new();
    let bind = store.bind(&tape);
    let (_, out) = model.forward_full(&tape, &bind, &ctx, false, &mut rng);
    let beta = out.beta?;
    let bv = tape.value_cloned(beta);
    let k = bv.cols();
    let mut sums = Matrix::zeros(ds.num_classes, k);
    let mut counts = vec![0usize; ds.num_classes];
    for (i, &c) in ds.labels.iter().enumerate() {
        counts[c] += 1;
        for l in 0..k {
            sums[(c, l)] += bv[(i, l)];
        }
    }
    for c in 0..ds.num_classes {
        if counts[c] > 0 {
            for l in 0..k {
                sums[(c, l)] /= counts[c] as f64;
            }
        }
    }
    Some(sums)
}

fn main() {
    let cfg = BenchConfig::from_env();
    cfg.banner("Figure 2: flyback attention per class per granularity level");
    for kind in [NodeDatasetKind::Acm, NodeDatasetKind::Dblp] {
        let ds = make_node_dataset(kind, &cfg.node_gen());
        println!("--- {} ({} classes) ---", ds.name, ds.num_classes);
        match class_attention(&ds, &cfg) {
            Some(att) => {
                let mut header = vec!["Class".to_string()];
                for l in 0..att.cols() {
                    header.push(format!("level-{}", l + 1));
                }
                let refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
                let mut table = TextTable::new(&refs);
                for c in 0..att.rows() {
                    let mut row = vec![format!("class {c}")];
                    for l in 0..att.cols() {
                        row.push(format!("{:.3}", att[(c, l)]));
                    }
                    table.row(row);
                }
                println!("{}", table.render());
            }
            None => println!("(no levels pooled — graph too uniform)\n"),
        }
    }
    println!("Dark cells of the paper's heatmap correspond to large values here;");
    println!("classes differ in which granularity level they attend to most.");
}

//! Online-serving benchmark: starts a real mg-serve server in-process on
//! an ephemeral loopback port, smoke-tests the endpoint contract (typed
//! rejections included), drives it at three concurrency levels, and
//! writes `BENCH_serve.json` with throughput, p50/p99 latency, and the
//! flush-size histogram.
//!
//! ```text
//! cargo run --release -p mg-bench --bin serve_report
//! ```
//!
//! `MG_BENCH_SERVE_JSON` overrides the report path; `skip` suppresses
//! the file. `MG_CKPT_PATH` supplies a compatible checkpoint to reuse.
//! Exits non-zero when any smoke check or request fails.

fn main() {
    std::process::exit(mg_bench::servebench::emit_default());
}

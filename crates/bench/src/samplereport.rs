//! Sampled-minibatch quality and scalability report, exported as
//! `BENCH_sample.json`.
//!
//! The `sample_report` binary answers two questions the minibatch path
//! must keep answering as the code evolves:
//!
//! 1. **Does sampling learn?** It trains the mg-verify node-classification
//!    and link-prediction fixtures twice — full-batch and with sampled
//!    ego-subgraph minibatches — under the same config and seed, and
//!    fails unless the sampled run's best validation metric lands within
//!    [`GAP_TOLERANCE`] of the full-batch run's.
//! 2. **Does it scale?** It generates the default million-node
//!    [`BigGraphConfig`] graph through the streaming CSR builder, fails
//!    if the builder's accounted peak exceeds the declared byte budget,
//!    and then runs one sampled training epoch over it — a path that
//!    never materializes a full-graph context.
//!
//! ```text
//! cargo run --release -p mg-bench --bin sample_report
//! ```
//!
//! `MG_BENCH_SAMPLE_JSON` overrides the report path (`skip` suppresses
//! the file but still runs every check).

use mg_data::{make_node_dataset, BigGraph, BigGraphConfig, NodeDatasetKind, NodeGenConfig};
use mg_eval::{MinibatchConfig, NodeModelKind, SessionKind, TrainConfig, TrainSession};

/// Maximum allowed shortfall of the sampled run's best validation metric
/// against the full-batch run's (2 accuracy/AUC points). A sampled run
/// that *beats* full-batch passes unconditionally.
pub const GAP_TOLERANCE: f64 = 0.02;

/// One fixture's full-batch vs sampled comparison.
#[derive(Clone, Debug)]
pub struct TaskGap {
    pub task: &'static str,
    pub full_val: f64,
    pub sampled_val: f64,
    pub full_test: f64,
    pub sampled_test: f64,
    pub batch_size: usize,
    pub fanouts: Vec<usize>,
    pub epochs: usize,
}

impl TaskGap {
    /// How far the sampled run fell short of full-batch on validation
    /// (negative when it did better).
    pub fn gap(&self) -> f64 {
        self.full_val - self.sampled_val
    }
}

/// The million-node streaming + sampled-epoch measurement.
#[derive(Clone, Debug)]
pub struct BigGraphRun {
    pub nodes: usize,
    pub edges: usize,
    pub byte_budget: usize,
    pub peak_bytes: usize,
    pub steps: usize,
    pub mean_loss: f64,
    pub sampled_nodes: usize,
    pub truncated: usize,
}

fn fixture_gap(
    task: &'static str,
    kind: SessionKind,
    ds_kind: NodeDatasetKind,
    gen_seed: u64,
    cfg_seed: u64,
    epochs: usize,
) -> Result<TaskGap, String> {
    let ds = make_node_dataset(
        ds_kind,
        &NodeGenConfig {
            scale: 0.05,
            max_feat_dim: 32,
            seed: gen_seed,
        },
    );
    let cfg = TrainConfig {
        epochs,
        lr: 0.02,
        patience: epochs,
        hidden: 16,
        levels: 2,
        seed: cfg_seed,
        ..Default::default()
    };
    let mb = MinibatchConfig {
        batch_size: 32,
        fanouts: vec![12, 12],
    };
    let full = TrainSession::new(kind, &cfg)
        .run(&ds)
        .map_err(|e| format!("{task} full-batch run failed: {e}"))?;
    let sampled = TrainSession::new(kind, &cfg)
        .minibatch(mb.clone())
        .run(&ds)
        .map_err(|e| format!("{task} sampled run failed: {e}"))?;
    let out = TaskGap {
        task,
        full_val: full.val_metric.unwrap_or(f64::NAN),
        sampled_val: sampled.val_metric.unwrap_or(f64::NAN),
        full_test: full.test_metric,
        sampled_test: sampled.test_metric,
        batch_size: mb.batch_size,
        fanouts: mb.fanouts,
        epochs,
    };
    // NaN gaps (a run without a validation metric) must fail too
    if out.gap() > GAP_TOLERANCE || out.gap().is_nan() {
        return Err(format!(
            "{task}: sampled val {:.4} trails full-batch val {:.4} by {:.4} \
             (tolerance {GAP_TOLERANCE})",
            out.sampled_val,
            out.full_val,
            out.gap()
        ));
    }
    Ok(out)
}

fn big_graph_epoch() -> Result<BigGraphRun, String> {
    let cfg = BigGraphConfig::default();
    let big = BigGraph::generate(&cfg);
    if big.peak_bytes > cfg.byte_budget {
        return Err(format!(
            "streaming builder peak {} exceeds its declared budget {}",
            big.peak_bytes, cfg.byte_budget
        ));
    }
    let train_cfg = TrainConfig {
        epochs: 1,
        lr: 0.02,
        hidden: 16,
        levels: 2,
        seed: 3,
        ..Default::default()
    };
    let mb = MinibatchConfig {
        batch_size: 128,
        fanouts: vec![6, 6],
    };
    let epoch =
        mg_eval::sampled_epochs_streamed(&big, NodeModelKind::AdamGnn, &train_cfg, &mb, 1024)
            .map_err(|e| format!("million-node sampled epoch failed: {e}"))?;
    use mg_data::NodeFeatureSource;
    Ok(BigGraphRun {
        nodes: big.n(),
        edges: big.graph().num_edges(),
        byte_budget: cfg.byte_budget,
        peak_bytes: big.peak_bytes,
        steps: epoch.steps,
        mean_loss: epoch.mean_loss,
        sampled_nodes: epoch.sampled_nodes,
        truncated: epoch.truncated,
    })
}

/// Run both fixture comparisons and the million-node epoch.
pub fn run_all() -> Result<(Vec<TaskGap>, BigGraphRun), String> {
    let nc = fixture_gap(
        "node_classification",
        SessionKind::NodeClassification(NodeModelKind::AdamGnn),
        NodeDatasetKind::Cora,
        11,
        1,
        20,
    )?;
    let lp = fixture_gap(
        "link_prediction",
        SessionKind::LinkPrediction(NodeModelKind::AdamGnn),
        NodeDatasetKind::Emails,
        23,
        2,
        12,
    )?;
    let big = big_graph_epoch()?;
    Ok((vec![nc, lp], big))
}

/// Render the `BENCH_sample.json` document.
pub fn to_json(tasks: &[TaskGap], big: &BigGraphRun) -> String {
    let rows = tasks
        .iter()
        .map(|t| {
            let fans = t
                .fanouts
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "    {{\"task\": \"{}\", \"epochs\": {}, \"batch_size\": {}, \
                 \"fanouts\": [{fans}], \"full_val\": {:.6}, \"sampled_val\": {:.6}, \
                 \"gap\": {:.6}, \"full_test\": {:.6}, \"sampled_test\": {:.6}}}",
                t.task,
                t.epochs,
                t.batch_size,
                t.full_val,
                t.sampled_val,
                t.gap(),
                t.full_test,
                t.sampled_test
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!(
        "{{\n  \"bench\": \"sampled_minibatch\",\n  \"parallel_feature\": {},\n  \
         \"fast_kernels_feature\": {},\n  \"gap_tolerance\": {:.2},\n  \
         \"tasks\": [\n{rows}\n  ],\n  \"big_graph\": {{\"nodes\": {}, \"edges\": {}, \
         \"byte_budget\": {}, \"peak_bytes\": {}, \"steps\": {}, \"mean_loss\": {:.6}, \
         \"sampled_nodes\": {}, \"truncated\": {}}}\n}}\n",
        cfg!(feature = "parallel"),
        cfg!(feature = "fast-kernels"),
        GAP_TOLERANCE,
        big.nodes,
        big.edges,
        big.byte_budget,
        big.peak_bytes,
        big.steps,
        big.mean_loss,
        big.sampled_nodes,
        big.truncated,
    )
}

/// Run everything and write `BENCH_sample.json` (path overridable via
/// `MG_BENCH_SAMPLE_JSON`; `skip` suppresses the file but still runs
/// every check). Returns a process exit code.
pub fn emit_default() -> i32 {
    let (tasks, big) = match run_all() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sample_report: {e}");
            return 1;
        }
    };
    for t in &tasks {
        eprintln!(
            "sample_report: {} full val {:.4} vs sampled val {:.4} (gap {:+.4})",
            t.task,
            t.full_val,
            t.sampled_val,
            t.gap()
        );
    }
    eprintln!(
        "sample_report: {} nodes / {} edges streamed at peak {} of {} bytes; \
         {} sampled steps, mean loss {:.4}",
        big.nodes, big.edges, big.peak_bytes, big.byte_budget, big.steps, big.mean_loss
    );
    let path = std::env::var("MG_BENCH_SAMPLE_JSON").unwrap_or_else(|_| "BENCH_sample.json".into());
    if path == "skip" {
        return 0;
    }
    let json = to_json(&tasks, &big);
    match std::fs::write(&path, &json) {
        Ok(()) => {
            eprintln!("wrote {path}");
            0
        }
        Err(e) => {
            eprintln!("failed to write {path}: {e}");
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_rows() -> (Vec<TaskGap>, BigGraphRun) {
        (
            vec![TaskGap {
                task: "node_classification",
                full_val: 0.8,
                sampled_val: 0.79,
                full_test: 0.75,
                sampled_test: 0.74,
                batch_size: 32,
                fanouts: vec![12, 12],
                epochs: 20,
            }],
            BigGraphRun {
                nodes: 1_000_000,
                edges: 3_900_000,
                byte_budget: 256 << 20,
                peak_bytes: 100 << 20,
                steps: 8,
                mean_loss: 2.1,
                sampled_nodes: 40_000,
                truncated: 12,
            },
        )
    }

    #[test]
    fn gap_math() {
        let (tasks, _) = sample_rows();
        assert!((tasks[0].gap() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn json_has_promised_fields() {
        let (tasks, big) = sample_rows();
        let json = to_json(&tasks, &big);
        for key in [
            "\"bench\"",
            "\"gap_tolerance\"",
            "\"full_val\"",
            "\"sampled_val\"",
            "\"gap\"",
            "\"fanouts\"",
            "\"big_graph\"",
            "\"byte_budget\"",
            "\"peak_bytes\"",
            "\"mean_loss\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}

//! Shared configuration for the benchmark binaries that regenerate every
//! table and figure of the AdamGNN evaluation.
//!
//! All binaries honour these environment variables:
//!
//! | variable | default | meaning |
//! |---|---|---|
//! | `REPRO_NODE_SCALE` | `0.3` | node-dataset size relative to the paper |
//! | `REPRO_GRAPH_SCALE` | `0.05` | graph-dataset size relative to the paper |
//! | `REPRO_SEEDS` | `1` | independent runs averaged per cell |
//! | `REPRO_EPOCHS` | `40` | maximum training epochs |
//! | `REPRO_HIDDEN` | `64` | hidden width (the paper uses 64) |
//!
//! Larger values track the paper's protocol more closely at the cost of
//! wall-clock time; the defaults finish each table in minutes on a laptop.

use adamgnn_core::LossWeights;
use mg_data::{GraphGenConfig, NodeGenConfig};
use mg_eval::TrainConfig;

pub mod inferbench;
pub mod memreport;
pub mod opsbench;
pub mod poolingreport;
pub mod samplereport;
pub mod servebench;
pub mod trainreport;

/// Read an environment variable with a typed default.
pub fn env_or<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Benchmark-wide settings.
#[derive(Clone, Copy, Debug)]
pub struct BenchConfig {
    pub node_scale: f64,
    pub graph_scale: f64,
    pub seeds: u64,
    pub epochs: usize,
    pub hidden: usize,
}

impl BenchConfig {
    /// Resolve from the environment.
    pub fn from_env() -> Self {
        BenchConfig {
            node_scale: env_or("REPRO_NODE_SCALE", 0.3),
            graph_scale: env_or("REPRO_GRAPH_SCALE", 0.05),
            seeds: env_or("REPRO_SEEDS", 1),
            epochs: env_or("REPRO_EPOCHS", 40),
            hidden: env_or("REPRO_HIDDEN", 64),
        }
    }

    /// Node-dataset generation options.
    pub fn node_gen(&self) -> NodeGenConfig {
        NodeGenConfig {
            scale: self.node_scale,
            max_feat_dim: 256,
            seed: 42,
        }
    }

    /// Graph-dataset generation options.
    pub fn graph_gen(&self) -> GraphGenConfig {
        GraphGenConfig {
            scale: self.graph_scale,
            max_nodes: 60,
            seed: 42,
        }
    }

    /// Trainer options for one run.
    pub fn train(&self, seed: u64, levels: usize) -> TrainConfig {
        TrainConfig {
            epochs: self.epochs,
            lr: 0.01,
            patience: self.epochs / 3 + 5,
            hidden: self.hidden,
            levels,
            seed,
            weights: LossWeights::default(),
            flyback: true,
            ..Default::default()
        }
    }

    /// Print the settings banner shown at the top of every table.
    pub fn banner(&self, what: &str) {
        println!("== {what} ==");
        println!(
            "(node_scale {}, graph_scale {}, seeds {}, epochs {}, hidden {}; \
             synthetic analogues of the paper's datasets — see DESIGN.md)\n",
            self.node_scale, self.graph_scale, self.seeds, self.epochs, self.hidden
        );
    }
}

/// Mean over per-seed results.
pub fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_or_parses_and_defaults() {
        std::env::remove_var("REPRO_TEST_VAR_X");
        assert_eq!(env_or::<usize>("REPRO_TEST_VAR_X", 7), 7);
        std::env::set_var("REPRO_TEST_VAR_X", "13");
        assert_eq!(env_or::<usize>("REPRO_TEST_VAR_X", 7), 13);
        std::env::set_var("REPRO_TEST_VAR_X", "not a number");
        assert_eq!(env_or::<usize>("REPRO_TEST_VAR_X", 7), 7);
    }

    #[test]
    fn bench_config_defaults() {
        let cfg = BenchConfig::from_env();
        assert!(cfg.node_scale > 0.0);
        assert!(cfg.seeds >= 1);
        let t = cfg.train(0, 3);
        assert_eq!(t.levels, 3);
        assert!(t.flyback);
    }
}

//! Frozen-model inference benchmark, exported as `BENCH_infer.json`.
//!
//! The `infer` binary is the serving-side counterpart of `train_report`:
//! it obtains a checkpoint (loading `MG_CKPT_PATH` when it names a
//! compatible one, training a small seeded job otherwise), loads it back
//! through [`FrozenModel`], and measures forward-pass throughput over the
//! benchmark graph:
//!
//! ```text
//! cargo run --release -p mg-bench --bin infer
//! ```
//!
//! Every measured forward replays the checkpoint's pinned pooling
//! structure (AdamGNN), so serving latency here is the latency a
//! deployment would see — no ego-network formation on the hot path.
//! `MG_BENCH_INFER_JSON` overrides the report path (`skip` suppresses
//! it); with `MG_TRACE` set, the job also appends one `infer` record to
//! the JSONL trace.

use mg_data::{make_node_dataset, NodeDataset, NodeDatasetKind, NodeGenConfig};
use mg_eval::{FrozenModel, NodeModelKind, SessionKind, TrainConfig, TrainSession};
use mg_nn::GraphCtx;
use mg_obs::{InferRecord, Trace};
use mg_serve::{
    ApiRequest, ApiResponse, LinksRequest, LinksResponse, ModelService, NodesRequest, NodesResponse,
};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Everything the inference benchmark job produced.
#[derive(Clone, Debug)]
pub struct InferBench {
    pub checkpoint: String,
    /// Whether this run trained the checkpoint (vs loading an existing
    /// compatible one from `MG_CKPT_PATH`).
    pub trained_here: bool,
    pub model: String,
    pub dataset: String,
    pub n_nodes: usize,
    pub pinned_structure: bool,
    /// Forward passes measured (after one untimed warm-up).
    pub forwards: usize,
    pub total_ns: u64,
    /// Distinct classes among the predicted labels — a collapse to one
    /// class flags a broken load without pinning exact accuracy.
    pub distinct_classes: usize,
    pub total_s: f64,
}

impl InferBench {
    pub fn mean_forward_ms(&self) -> f64 {
        self.total_ns as f64 / 1e6 / self.forwards.max(1) as f64
    }
}

/// The benchmark's fixed dataset: the same seeded Cora analogue the
/// traced-training benchmark uses, so the two reports describe one
/// workload from both sides. Shared with the serving benchmark
/// (`servebench`), which loads the same checkpoint this job produces.
pub(crate) fn bench_dataset(scale: f64) -> NodeDataset {
    make_node_dataset(
        NodeDatasetKind::Cora,
        &NodeGenConfig {
            scale,
            max_feat_dim: 32,
            seed: 11,
        },
    )
}

/// An existing checkpoint is reusable only when it describes this exact
/// benchmark job; anything else (other dataset size, other task, corrupt
/// file) means retrain rather than serve stale or mismatched weights.
pub(crate) fn compatible(path: &Path, ds: &NodeDataset) -> bool {
    match FrozenModel::load(path) {
        Ok(m) => {
            let meta = m.meta();
            meta.task == "node_classification"
                && meta.n_nodes == ds.n()
                && meta.in_dim == ds.feat_dim()
                && meta.out_dim == ds.num_classes
        }
        Err(_) => false,
    }
}

/// Resolve the checkpoint location: an explicit override, else
/// `MG_CKPT_PATH`, else a per-process temp default.
pub(crate) fn checkpoint_destination(explicit: Option<&Path>) -> PathBuf {
    if let Some(p) = explicit {
        return p.to_path_buf();
    }
    match std::env::var("MG_CKPT_PATH") {
        Ok(p) if !p.is_empty() => PathBuf::from(p),
        _ => std::env::temp_dir().join(format!("mg_infer_bench_{}.mgc", std::process::id())),
    }
}

/// Obtain the benchmark checkpoint: reuse a compatible one at the
/// resolved path, train the seeded job otherwise. Returns the path, the
/// benchmark dataset, and whether training happened here. Shared with
/// the serving benchmark so both reports describe one model.
pub(crate) fn obtain_checkpoint(
    scale: f64,
    epochs: usize,
    ckpt_path: Option<&Path>,
) -> Result<(PathBuf, NodeDataset, bool), String> {
    let ds = bench_dataset(scale);
    let path = checkpoint_destination(ckpt_path);
    let trained_here = if path.exists() && compatible(&path, &ds) {
        false
    } else {
        let cfg = TrainConfig {
            epochs,
            lr: 0.02,
            patience: epochs,
            hidden: 16,
            levels: 2,
            seed: 1,
            ..Default::default()
        };
        TrainSession::new(
            SessionKind::NodeClassification(NodeModelKind::AdamGnn),
            &cfg,
        )
        .traced(false)
        .checkpoint_to(&path)
        .run(&ds)
        .map_err(|e| format!("training the benchmark checkpoint failed: {e}"))?;
        true
    };
    Ok((path, ds, trained_here))
}

/// Run the inference benchmark: obtain a checkpoint, freeze it, measure
/// `forwards` timed forward passes. `ckpt_path` overrides the
/// environment-driven checkpoint location (tests use this to avoid
/// cross-test env races).
pub fn run_job(
    scale: f64,
    epochs: usize,
    forwards: usize,
    ckpt_path: Option<&Path>,
) -> Result<InferBench, String> {
    let started = Instant::now();
    let (path, ds, trained_here) = obtain_checkpoint(scale, epochs, ckpt_path)?;

    let model = FrozenModel::load(&path)
        .map_err(|e| format!("cannot load checkpoint {}: {e}", path.display()))?;
    let ctx = GraphCtx::new(ds.graph.clone(), ds.features.clone());
    let (meta_model, meta_dataset) = (model.meta().model.clone(), model.meta().dataset.clone());
    let pinned_structure = model.structure().is_some();
    // The sanity checks run through mg-serve's ModelService and wire
    // types: offline inference exercises exactly the request/response
    // path the online server exposes, so the two cannot drift.
    let svc = ModelService::new(model, ctx)
        .map_err(|e| format!("model/context pairing cannot serve: {e}"))?;

    // Warm-up request (untimed), reused as the prediction sanity check.
    // Encode → decode through the wire JSON to cover the serialization
    // the server would perform (floats round-trip bitwise).
    let all_ids: Vec<usize> = (0..ds.n()).collect();
    let nodes_req = NodesRequest { ids: all_ids };
    let nodes_req = NodesRequest::from_json(&nodes_req.to_json(), ds.n())
        .map_err(|e| format!("nodes request did not round-trip: {e}"))?;
    let labels = match svc
        .handle_one(ApiRequest::Nodes(nodes_req))
        .map_err(|e| format!("frozen forward failed: {e}"))?
    {
        ApiResponse::Nodes(resp) => {
            let resp = NodesResponse::from_json(&resp.to_json())
                .map_err(|e| format!("nodes response did not round-trip: {e}"))?;
            resp.labels
        }
        ApiResponse::Links(_) => return Err("nodes request answered with link scores".into()),
    };
    if labels.len() != ds.n() {
        return Err(format!(
            "frozen model produced {} predictions for {} nodes",
            labels.len(),
            ds.n()
        ));
    }
    let mut seen = vec![false; ds.num_classes];
    for &l in &labels {
        if l >= seen.len() {
            return Err(format!("label {l} outside the {} classes", seen.len()));
        }
        seen[l] = true;
    }
    let distinct_classes = seen.iter().filter(|&&s| s).count();

    // Exercise the link-scoring surface once: scores must be probabilities.
    let pairs: Vec<(usize, usize)> = (0..ds.n().saturating_sub(1).min(8))
        .map(|i| (i, i + 1))
        .collect();
    let links = match svc
        .handle_one(ApiRequest::Links(LinksRequest { pairs }))
        .map_err(|e| format!("link scoring failed: {e}"))?
    {
        ApiResponse::Links(resp) => {
            LinksResponse::from_json(&resp.to_json())
                .map_err(|e| format!("links response did not round-trip: {e}"))?
                .scores
        }
        ApiResponse::Nodes(_) => return Err("links request answered with node outputs".into()),
    };
    for s in links {
        if !(0.0..=1.0).contains(&s) {
            return Err(format!("link score {s} outside [0, 1]"));
        }
    }

    let timer = Instant::now();
    for _ in 0..forwards {
        let again = svc
            .forward()
            .map_err(|e| format!("frozen forward failed: {e}"))?;
        // Inference is deterministic; a shape drift mid-loop is a bug.
        if again.rows() != ds.n() {
            return Err("forward output shape changed between calls".into());
        }
    }
    let total_ns = timer.elapsed().as_nanos() as u64;

    let bench = InferBench {
        checkpoint: path.display().to_string(),
        trained_here,
        model: meta_model,
        dataset: meta_dataset,
        n_nodes: ds.n(),
        pinned_structure,
        forwards,
        total_ns,
        distinct_classes,
        total_s: started.elapsed().as_secs_f64(),
    };

    let mut trace = Trace::from_env(&svc.model().meta().task);
    trace.infer(&InferRecord {
        checkpoint: bench.checkpoint.clone(),
        model: bench.model.clone(),
        dataset: bench.dataset.clone(),
        n_nodes: bench.n_nodes,
        pinned_structure: bench.pinned_structure,
        forwards: bench.forwards,
        total_ns: bench.total_ns,
    });

    Ok(bench)
}

/// Render the `BENCH_infer.json` document.
pub fn to_json(b: &InferBench) -> String {
    format!(
        "{{\n  \"task\": \"node_classification\",\n  \"model\": \"{}\",\n  \
         \"dataset\": \"{}\",\n  \"checkpoint\": \"{}\",\n  \"trained_here\": {},\n  \
         \"parallel_feature\": {},\n  \"n_nodes\": {},\n  \"pinned_structure\": {},\n  \
         \"distinct_classes\": {},\n  \"forwards\": {},\n  \"total_ns\": {},\n  \
         \"mean_forward_ms\": {:.3},\n  \"total_s\": {:.3}\n}}\n",
        b.model,
        b.dataset,
        b.checkpoint.replace('\\', "/"),
        b.trained_here,
        cfg!(feature = "parallel"),
        b.n_nodes,
        b.pinned_structure,
        b.distinct_classes,
        b.forwards,
        b.total_ns,
        b.mean_forward_ms(),
        b.total_s,
    )
}

/// Run the default-size job and write `BENCH_infer.json` (path
/// overridable via `MG_BENCH_INFER_JSON`; `skip` suppresses the file but
/// still runs the measurement). Returns a process exit code.
pub fn emit_default() -> i32 {
    let b = match run_job(0.08, 8, 16, None) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("infer: {e}");
            return 1;
        }
    };
    eprintln!(
        "infer: {} ({}) from {}{}, {} nodes, {} forwards, mean {:.2} ms, {} classes predicted",
        b.model,
        b.dataset,
        b.checkpoint,
        if b.trained_here {
            " (trained this run)"
        } else {
            " (reused)"
        },
        b.n_nodes,
        b.forwards,
        b.mean_forward_ms(),
        b.distinct_classes,
    );
    let path = std::env::var("MG_BENCH_INFER_JSON").unwrap_or_else(|_| "BENCH_infer.json".into());
    if path == "skip" {
        return 0;
    }
    let json = to_json(&b);
    match std::fs::write(&path, &json) {
        Ok(()) => {
            eprintln!("wrote {path}");
            0
        }
        Err(e) => {
            eprintln!("failed to write {path}: {e}");
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_obs::Json;

    /// Train-then-infer on a tiny job, then rerun against the same path:
    /// the second run must reuse the checkpoint instead of retraining.
    #[test]
    fn job_runs_and_reuses_its_checkpoint() {
        let path =
            std::env::temp_dir().join(format!("mg_infer_bench_test_{}.mgc", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let first = run_job(0.03, 3, 2, Some(&path)).expect("first job runs");
        assert!(first.trained_here);
        assert_eq!(first.forwards, 2);
        assert!(first.distinct_classes >= 1);
        assert!(first.pinned_structure, "AdamGNN checkpoint pins structure");
        let second = run_job(0.03, 3, 2, Some(&path)).expect("second job runs");
        assert!(!second.trained_here, "compatible checkpoint must be reused");
        assert_eq!(second.model, first.model);
        let json = to_json(&second);
        let v = Json::parse(&json).expect("report is valid JSON");
        assert_eq!(v.get("task").unwrap().as_str(), Some("node_classification"));
        for key in [
            "model",
            "checkpoint",
            "trained_here",
            "forwards",
            "mean_forward_ms",
            "pinned_structure",
            "n_nodes",
        ] {
            assert!(v.get(key).is_some(), "missing {key} in {json}");
        }
        let _ = std::fs::remove_file(&path);
    }

    /// A checkpoint for a different dataset size must not be served.
    #[test]
    fn incompatible_checkpoint_triggers_retrain() {
        let path = std::env::temp_dir().join(format!(
            "mg_infer_bench_mismatch_{}.mgc",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        run_job(0.05, 3, 1, Some(&path)).expect("seed job runs");
        // Same path, different scale: meta no longer matches.
        let b = run_job(0.03, 3, 1, Some(&path)).expect("mismatched job runs");
        assert!(b.trained_here, "mismatched checkpoint must be retrained");
        let _ = std::fs::remove_file(&path);
    }
}

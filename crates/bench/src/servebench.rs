//! Online-serving benchmark, exported as `BENCH_serve.json`.
//!
//! The `serve_report` binary is the online counterpart of `infer`: it
//! obtains the same benchmark checkpoint (reusing `MG_CKPT_PATH` when
//! compatible, training the seeded job otherwise), starts a real
//! [`Server`] on an ephemeral loopback port, smoke-tests the endpoint
//! contract with mixed valid and invalid requests (typed rejections
//! asserted, not just non-200s), then drives the server at several
//! concurrency levels over keep-alive connections:
//!
//! ```text
//! cargo run --release -p mg-bench --bin serve_report
//! ```
//!
//! Per level the report records throughput and p50/p99 latency; the
//! final `/statsz` scrape contributes the flush-size histogram, which is
//! the direct evidence of micro-batching (higher concurrency → more
//! multi-request flushes). `MG_BENCH_SERVE_JSON` overrides the report
//! path (`skip` suppresses it).

use crate::inferbench::obtain_checkpoint;
use mg_eval::FrozenModel;
use mg_nn::GraphCtx;
use mg_obs::Json;
use mg_serve::{HttpClient, LinksRequest, NodesRequest, ServeConfig, Server};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Obtain (reuse or train) the benchmark checkpoint and its dataset —
/// the standalone `serve` binary's startup path.
pub fn prepare_checkpoint(
    scale: f64,
    epochs: usize,
) -> Result<(PathBuf, mg_data::NodeDataset, bool), String> {
    obtain_checkpoint(scale, epochs, None)
}

/// One concurrency level's measurements.
#[derive(Clone, Debug)]
pub struct LevelStats {
    pub concurrency: usize,
    pub requests: usize,
    pub wall_s: f64,
    pub throughput_rps: f64,
    pub p50_ms: f64,
    pub p99_ms: f64,
}

/// Everything the serving benchmark produced.
#[derive(Clone, Debug)]
pub struct ServeBench {
    pub checkpoint: String,
    pub trained_here: bool,
    pub model: String,
    pub dataset: String,
    pub n_nodes: usize,
    pub max_batch: usize,
    pub max_wait_us: u64,
    /// Contract checks performed by the smoke phase (valid requests
    /// answered, invalid ones rejected with the right typed code).
    pub smoke_checks: usize,
    pub levels: Vec<LevelStats>,
    /// flush size -> flush count, from the final `/statsz` scrape.
    pub batch_hist: Vec<(usize, u64)>,
    pub flushes: u64,
    pub total_s: f64,
}

fn percentile_ms(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted_ns.len() - 1) as f64).round() as usize;
    sorted_ns[idx.min(sorted_ns.len() - 1)] as f64 / 1e6
}

/// The request a client issues on iteration `i`: alternating node
/// lookups and link scorings with varying ids, so flushes are mixed.
fn request_body(i: usize, n_nodes: usize) -> (&'static str, String) {
    if i.is_multiple_of(2) {
        let ids = vec![i % n_nodes, (i * 31 + 5) % n_nodes];
        ("/v1/nodes", NodesRequest { ids }.to_json())
    } else {
        let pairs = vec![(i % n_nodes, (i * 17 + 3) % n_nodes)];
        ("/v1/links", LinksRequest { pairs }.to_json())
    }
}

/// Assert one smoke expectation against the live server.
fn check(
    client: &mut HttpClient,
    method: &str,
    path: &str,
    body: Option<&str>,
    want_status: u16,
    want_code: Option<&str>,
) -> Result<(), String> {
    let (status, resp) = client
        .request(method, path, body)
        .map_err(|e| format!("{method} {path}: transport failed: {e}"))?;
    if status != want_status {
        return Err(format!(
            "{method} {path}: expected {want_status}, got {status} ({resp})"
        ));
    }
    if let Some(code) = want_code {
        let v = Json::parse(&resp).map_err(|e| format!("{method} {path}: body not JSON: {e}"))?;
        if v.get("error").and_then(Json::as_str) != Some(code) {
            return Err(format!(
                "{method} {path}: expected error code {code:?}, got {resp}"
            ));
        }
    }
    Ok(())
}

/// The endpoint-contract smoke phase: valid requests answer 200, every
/// class of invalid request is rejected with its typed code, and a
/// rejection never wedges the connection. Returns the check count.
fn smoke(addr: SocketAddr, n_nodes: usize) -> Result<usize, String> {
    let mut c = HttpClient::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let good_nodes = NodesRequest {
        ids: vec![0, n_nodes - 1],
    }
    .to_json();
    let good_links = LinksRequest {
        pairs: vec![(0, n_nodes - 1)],
    }
    .to_json();
    let bad_id = NodesRequest {
        ids: vec![n_nodes + 9],
    }
    .to_json();
    type Case<'a> = (&'a str, &'a str, Option<&'a str>, u16, Option<&'a str>);
    let cases: Vec<Case> = vec![
        ("GET", "/healthz", None, 200, None),
        ("POST", "/v1/nodes", Some(&good_nodes), 200, None),
        ("POST", "/v1/links", Some(&good_links), 200, None),
        (
            "POST",
            "/v1/nodes",
            Some("not json"),
            400,
            Some("bad_request"),
        ),
        (
            "POST",
            "/v1/nodes",
            Some(&bad_id),
            400,
            Some("invalid_input"),
        ),
        (
            "POST",
            "/v1/links",
            Some("{\"pairs\": [[0]]}"),
            400,
            Some("bad_request"),
        ),
        ("GET", "/v1/nodes", None, 405, Some("method_not_allowed")),
        ("POST", "/nope", None, 404, Some("not_found")),
        // the same connection keeps serving after every rejection above
        ("POST", "/v1/nodes", Some(&good_nodes), 200, None),
        ("GET", "/statsz", None, 200, None),
    ];
    let n = cases.len();
    for (method, path, body, status, code) in cases {
        check(&mut c, method, path, body, status, code)?;
    }
    Ok(n)
}

/// Drive one concurrency level: `concurrency` keep-alive clients, each
/// issuing `per_client` requests, every response checked for 200.
fn drive_level(
    addr: SocketAddr,
    n_nodes: usize,
    concurrency: usize,
    per_client: usize,
) -> Result<LevelStats, String> {
    let wall = Instant::now();
    let workers: Vec<_> = (0..concurrency)
        .map(|w| {
            std::thread::spawn(move || -> Result<Vec<u64>, String> {
                let mut client = HttpClient::connect(addr).map_err(|e| format!("connect: {e}"))?;
                let mut lat = Vec::with_capacity(per_client);
                for i in 0..per_client {
                    let (path, body) = request_body(w * per_client + i, n_nodes);
                    let t = Instant::now();
                    let (status, resp) = client
                        .request("POST", path, Some(&body))
                        .map_err(|e| format!("request: {e}"))?;
                    lat.push(t.elapsed().as_nanos() as u64);
                    if status != 200 {
                        return Err(format!("worker {w}: {path} answered {status}: {resp}"));
                    }
                }
                Ok(lat)
            })
        })
        .collect();
    let mut latencies = Vec::with_capacity(concurrency * per_client);
    for worker in workers {
        latencies.extend(worker.join().map_err(|_| "worker panicked".to_string())??);
    }
    let wall_s = wall.elapsed().as_secs_f64();
    latencies.sort_unstable();
    Ok(LevelStats {
        concurrency,
        requests: latencies.len(),
        wall_s,
        throughput_rps: latencies.len() as f64 / wall_s.max(1e-9),
        p50_ms: percentile_ms(&latencies, 50.0),
        p99_ms: percentile_ms(&latencies, 99.0),
    })
}

/// Run the serving benchmark end to end.
pub fn run_job(
    scale: f64,
    epochs: usize,
    per_client: usize,
    concurrency_levels: &[usize],
    ckpt_path: Option<&Path>,
) -> Result<ServeBench, String> {
    if concurrency_levels.len() < 3 {
        return Err(format!(
            "the report needs at least 3 concurrency levels, got {concurrency_levels:?}"
        ));
    }
    let started = Instant::now();
    let (path, ds, trained_here) = obtain_checkpoint(scale, epochs, ckpt_path)?;
    let n_nodes = ds.n();

    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        max_batch: 16,
        max_wait: Duration::from_micros(300),
        ..ServeConfig::default()
    };
    let (max_batch, max_wait_us) = (cfg.max_batch, cfg.max_wait.as_micros() as u64);
    let init_path = path.clone();
    let server = Server::start(cfg, move || {
        let fm = FrozenModel::load(&init_path)?;
        let ds = crate::inferbench::bench_dataset(scale);
        let ctx = GraphCtx::new(ds.graph.clone(), ds.features.clone());
        Ok((fm, ctx))
    })
    .map_err(|e| format!("server failed to start: {e}"))?;
    let addr = server.addr();

    let result = (|| -> Result<ServeBench, String> {
        let smoke_checks = smoke(addr, n_nodes)?;

        let mut levels = Vec::new();
        for &concurrency in concurrency_levels {
            levels.push(drive_level(addr, n_nodes, concurrency, per_client)?);
        }

        // the final statsz scrape carries the batching evidence
        let mut c = HttpClient::connect(addr).map_err(|e| format!("connect: {e}"))?;
        let (status, body) = c
            .request("GET", "/statsz", None)
            .map_err(|e| format!("statsz: {e}"))?;
        if status != 200 {
            return Err(format!("statsz answered {status}"));
        }
        let v = Json::parse(&body).map_err(|e| format!("statsz body: {e}"))?;
        let model = v
            .get("model")
            .and_then(Json::as_str)
            .ok_or("statsz lacks model")?
            .to_string();
        let dataset = v
            .get("dataset")
            .and_then(Json::as_str)
            .ok_or("statsz lacks dataset")?
            .to_string();
        let batch = v.get("batch").ok_or("statsz lacks batch")?;
        let flushes = batch
            .get("flushes")
            .and_then(Json::as_f64)
            .ok_or("statsz lacks flushes")? as u64;
        let mut batch_hist: Vec<(usize, u64)> = Vec::new();
        for size in 1..=max_batch {
            if let Some(count) = batch
                .get("hist")
                .and_then(|h| h.get(&size.to_string()))
                .and_then(Json::as_f64)
            {
                batch_hist.push((size, count as u64));
            }
        }
        Ok(ServeBench {
            checkpoint: path.display().to_string(),
            trained_here,
            model,
            dataset,
            n_nodes,
            max_batch,
            max_wait_us,
            smoke_checks,
            levels,
            batch_hist,
            flushes,
            total_s: started.elapsed().as_secs_f64(),
        })
    })();
    server.shutdown();
    result
}

/// Render the `BENCH_serve.json` document.
pub fn to_json(b: &ServeBench) -> String {
    let levels: Vec<String> = b
        .levels
        .iter()
        .map(|l| {
            format!(
                "    {{\"concurrency\": {}, \"requests\": {}, \"wall_s\": {:.3}, \
                 \"throughput_rps\": {:.1}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}}}",
                l.concurrency, l.requests, l.wall_s, l.throughput_rps, l.p50_ms, l.p99_ms
            )
        })
        .collect();
    let hist: Vec<String> = b
        .batch_hist
        .iter()
        .map(|(size, count)| format!("\"{size}\": {count}"))
        .collect();
    format!(
        "{{\n  \"task\": \"serve\",\n  \"model\": \"{}\",\n  \"dataset\": \"{}\",\n  \
         \"checkpoint\": \"{}\",\n  \"trained_here\": {},\n  \"parallel_feature\": {},\n  \
         \"n_nodes\": {},\n  \"max_batch\": {},\n  \"max_wait_us\": {},\n  \
         \"smoke_checks\": {},\n  \"levels\": [\n{}\n  ],\n  \
         \"batch_hist\": {{{}}},\n  \"flushes\": {},\n  \"total_s\": {:.3}\n}}\n",
        b.model,
        b.dataset,
        b.checkpoint.replace('\\', "/"),
        b.trained_here,
        cfg!(feature = "parallel"),
        b.n_nodes,
        b.max_batch,
        b.max_wait_us,
        b.smoke_checks,
        levels.join(",\n"),
        hist.join(", "),
        b.flushes,
        b.total_s,
    )
}

/// Run the default-size job and write `BENCH_serve.json` (path
/// overridable via `MG_BENCH_SERVE_JSON`; `skip` suppresses the file but
/// still runs the measurement). Returns a process exit code.
pub fn emit_default() -> i32 {
    let b = match run_job(0.08, 8, 40, &[1, 4, 16], None) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("serve_report: {e}");
            return 1;
        }
    };
    eprintln!(
        "serve_report: {} ({}) from {}{}, {} nodes, {} smoke checks, {} flushes",
        b.model,
        b.dataset,
        b.checkpoint,
        if b.trained_here {
            " (trained this run)"
        } else {
            " (reused)"
        },
        b.n_nodes,
        b.smoke_checks,
        b.flushes,
    );
    for l in &b.levels {
        eprintln!(
            "  c={:>3}: {:>5} reqs, {:>8.1} req/s, p50 {:>7.3} ms, p99 {:>7.3} ms",
            l.concurrency, l.requests, l.throughput_rps, l.p50_ms, l.p99_ms
        );
    }
    let path = std::env::var("MG_BENCH_SERVE_JSON").unwrap_or_else(|_| "BENCH_serve.json".into());
    if path == "skip" {
        return 0;
    }
    let json = to_json(&b);
    match std::fs::write(&path, &json) {
        Ok(()) => {
            eprintln!("wrote {path}");
            0
        }
        Err(e) => {
            eprintln!("failed to write {path}: {e}");
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny end-to-end job: smoke passes, every level measures, and
    /// the report is valid JSON with the required keys.
    #[test]
    fn job_serves_measures_and_reports() {
        let path =
            std::env::temp_dir().join(format!("mg_serve_bench_test_{}.mgc", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let b = run_job(0.03, 3, 6, &[1, 2, 4], Some(&path)).expect("job runs");
        assert!(b.trained_here);
        assert_eq!(b.smoke_checks, 10);
        assert_eq!(b.levels.len(), 3);
        for l in &b.levels {
            assert!(l.requests > 0 && l.throughput_rps > 0.0);
            assert!(l.p50_ms <= l.p99_ms);
        }
        assert!(b.flushes > 0, "the batcher must have flushed");
        let total_flushed: u64 = b.batch_hist.iter().map(|(_, c)| c).sum();
        assert_eq!(
            total_flushed, b.flushes,
            "histogram accounts for every flush"
        );
        let json = to_json(&b);
        let v = Json::parse(&json).expect("report is valid JSON");
        for key in [
            "model",
            "checkpoint",
            "levels",
            "batch_hist",
            "flushes",
            "smoke_checks",
        ] {
            assert!(v.get(key).is_some(), "missing {key} in {json}");
        }
        assert_eq!(v.get("levels").unwrap().as_arr().unwrap().len(), 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fewer_than_three_levels_is_refused() {
        let err = run_job(0.03, 3, 2, &[1, 2], None).unwrap_err();
        assert!(err.contains("at least 3"), "{err}");
    }
}

//! Table-4-style pooling-operator benchmark matrix, exported as
//! `BENCH_pooling.json`.
//!
//! The `pooling_report` binary trains the same three tasks — node
//! classification, link prediction and graph classification — once per
//! shipped [`PoolingKind`], everything else held fixed (dataset, seed,
//! width, levels). Each cell reports the val/test metrics and the mean
//! wall-clock seconds per epoch, which is exactly the comparison the
//! paper's Table 4 draws between AdamGNN and rival hierarchical pooling
//! methods.
//!
//! ```text
//! cargo run --release -p mg-bench --bin pooling_report
//! ```
//!
//! `MG_BENCH_POOLING_JSON` overrides the report path (`skip` suppresses
//! the file but still runs the matrix). The run **fails** (non-zero
//! exit) if any cell's training loss or metric goes non-finite — a rival
//! operator that diverges is a bug in the operator, not a benchmark
//! result.

use adamgnn_core::PoolingKind;
use mg_data::{
    make_graph_dataset, make_node_dataset, GraphDatasetKind, GraphGenConfig, NodeDatasetKind,
    NodeGenConfig,
};
use mg_eval::{GraphModelKind, NodeModelKind, SessionKind, TrainConfig, TrainSession};
use std::time::Instant;

/// One (task, operator) cell of the matrix.
#[derive(Clone, Debug)]
pub struct PoolingCell {
    pub task: &'static str,
    pub pooling: &'static str,
    pub val_metric: f64,
    pub test_metric: f64,
    pub epochs_run: usize,
    /// Mean wall-clock seconds per training epoch (Table 4's metric).
    pub mean_epoch_s: f64,
}

/// Sizing knobs: the binary uses [`emit_default`]'s settings, tests
/// shrink both.
#[derive(Clone, Copy, Debug)]
pub struct MatrixConfig {
    pub node_scale: f64,
    pub graph_scale: f64,
    pub epochs: usize,
}

fn train_cfg(epochs: usize, seed: u64, pooling: PoolingKind) -> TrainConfig {
    TrainConfig {
        epochs,
        lr: 0.02,
        patience: epochs,
        hidden: 16,
        levels: 2,
        seed,
        pooling,
        ..Default::default()
    }
}

/// Reject a cell whose run produced any non-finite loss or metric.
fn check_finite(cell: &PoolingCell, trace_losses: &[f64]) -> Result<(), String> {
    for (i, &l) in trace_losses.iter().enumerate() {
        if !l.is_finite() {
            return Err(format!(
                "{} / {}: non-finite training loss {l} at epoch {i}",
                cell.task, cell.pooling
            ));
        }
    }
    if !(cell.val_metric.is_finite() && cell.test_metric.is_finite()) {
        return Err(format!(
            "{} / {}: non-finite metric (val {}, test {})",
            cell.task, cell.pooling, cell.val_metric, cell.test_metric
        ));
    }
    Ok(())
}

/// Run the full task × operator matrix. Within a task every operator
/// sees the identical dataset, split seeds and budget, so the cells are
/// directly comparable.
pub fn run_matrix(cfg: &MatrixConfig) -> Result<Vec<PoolingCell>, String> {
    let node_ds = make_node_dataset(
        NodeDatasetKind::Cora,
        &NodeGenConfig {
            scale: cfg.node_scale,
            max_feat_dim: 32,
            seed: 11,
        },
    );
    let link_ds = make_node_dataset(
        NodeDatasetKind::Emails,
        &NodeGenConfig {
            scale: cfg.node_scale,
            max_feat_dim: 32,
            seed: 23,
        },
    );
    let graph_ds = make_graph_dataset(
        GraphDatasetKind::Mutag,
        &GraphGenConfig {
            scale: cfg.graph_scale,
            max_nodes: 20,
            seed: 5,
        },
    );

    let mut cells = Vec::with_capacity(3 * PoolingKind::ALL.len());
    for kind in PoolingKind::ALL {
        // node classification
        let started = Instant::now();
        let res = TrainSession::new(
            SessionKind::NodeClassification(NodeModelKind::AdamGnn),
            &train_cfg(cfg.epochs, 1, kind),
        )
        .run(&node_ds)
        .map_err(|e| format!("node_classification / {}: {e}", kind.name()))?;
        let cell = PoolingCell {
            task: "node_classification",
            pooling: kind.name(),
            val_metric: res.val_metric.unwrap_or(f64::NAN),
            test_metric: res.test_metric,
            epochs_run: res.epochs_run,
            mean_epoch_s: started.elapsed().as_secs_f64() / res.epochs_run.max(1) as f64,
        };
        check_finite(
            &cell,
            &res.trace.records.iter().map(|r| r.loss).collect::<Vec<_>>(),
        )?;
        cells.push(cell);

        // link prediction
        let started = Instant::now();
        let res = TrainSession::new(
            SessionKind::LinkPrediction(NodeModelKind::AdamGnn),
            &train_cfg(cfg.epochs, 2, kind),
        )
        .run(&link_ds)
        .map_err(|e| format!("link_prediction / {}: {e}", kind.name()))?;
        let cell = PoolingCell {
            task: "link_prediction",
            pooling: kind.name(),
            val_metric: res.val_metric.unwrap_or(f64::NAN),
            test_metric: res.test_metric,
            epochs_run: res.epochs_run,
            mean_epoch_s: started.elapsed().as_secs_f64() / res.epochs_run.max(1) as f64,
        };
        check_finite(
            &cell,
            &res.trace.records.iter().map(|r| r.loss).collect::<Vec<_>>(),
        )?;
        cells.push(cell);

        // graph classification (epoch timing straight from the trainer,
        // which excludes evaluation — the Table 4 protocol)
        let res = TrainSession::new(
            SessionKind::GraphClassification(GraphModelKind::AdamGnn),
            &train_cfg(cfg.epochs, 3, kind),
        )
        .run(&graph_ds)
        .map_err(|e| format!("graph_classification / {}: {e}", kind.name()))?;
        let cell = PoolingCell {
            task: "graph_classification",
            pooling: kind.name(),
            val_metric: res.val_metric.unwrap_or(f64::NAN),
            test_metric: res.test_metric,
            epochs_run: res.epochs_run,
            mean_epoch_s: res.epoch_seconds.unwrap_or(f64::NAN),
        };
        check_finite(
            &cell,
            &res.trace.records.iter().map(|r| r.loss).collect::<Vec<_>>(),
        )?;
        cells.push(cell);
    }
    Ok(cells)
}

/// Render the `BENCH_pooling.json` document: one row per (task,
/// operator) cell, in matrix order.
pub fn to_json(cells: &[PoolingCell]) -> String {
    let rows = cells
        .iter()
        .map(|c| {
            format!(
                "    {{\"task\": \"{}\", \"pooling\": \"{}\", \"val_metric\": {:.6}, \
                 \"test_metric\": {:.6}, \"epochs_run\": {}, \"mean_epoch_s\": {:.6}}}",
                c.task, c.pooling, c.val_metric, c.test_metric, c.epochs_run, c.mean_epoch_s
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!(
        "{{\n  \"parallel_feature\": {},\n  \"operators\": [{}],\n  \"cells\": [\n{rows}\n  ]\n}}\n",
        cfg!(feature = "parallel"),
        PoolingKind::ALL
            .iter()
            .map(|k| format!("\"{}\"", k.name()))
            .collect::<Vec<_>>()
            .join(", "),
    )
}

/// Run the default-size matrix and write `BENCH_pooling.json` (path
/// overridable via `MG_BENCH_POOLING_JSON`; `skip` suppresses the file
/// but still runs — and finiteness-checks — every cell). Returns a
/// process exit code.
pub fn emit_default() -> i32 {
    let cells = match run_matrix(&MatrixConfig {
        node_scale: 0.08,
        graph_scale: 0.04,
        epochs: 12,
    }) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("pooling_report: {e}");
            return 1;
        }
    };
    for c in &cells {
        eprintln!(
            "pooling_report: {:22} {:8} val {:.4} test {:.4} ({} epochs, {:.1} ms/epoch)",
            c.task,
            c.pooling,
            c.val_metric,
            c.test_metric,
            c.epochs_run,
            c.mean_epoch_s * 1e3,
        );
    }
    let path =
        std::env::var("MG_BENCH_POOLING_JSON").unwrap_or_else(|_| "BENCH_pooling.json".into());
    if path == "skip" {
        return 0;
    }
    let json = to_json(&cells);
    match std::fs::write(&path, &json) {
        Ok(()) => {
            eprintln!("wrote {path}");
            0
        }
        Err(e) => {
            eprintln!("failed to write {path}: {e}");
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny matrix end to end: all nine cells run, every metric is
    /// finite, and the JSON carries one row per cell.
    #[test]
    fn tiny_matrix_produces_all_nine_cells() {
        let cells = run_matrix(&MatrixConfig {
            node_scale: 0.03,
            graph_scale: 0.02,
            epochs: 2,
        })
        .expect("matrix runs");
        assert_eq!(cells.len(), 9);
        for kind in PoolingKind::ALL {
            assert_eq!(cells.iter().filter(|c| c.pooling == kind.name()).count(), 3);
        }
        let json = to_json(&cells);
        assert_eq!(json.matches("\"task\"").count(), 9);
        for key in [
            "\"pooling\"",
            "\"val_metric\"",
            "\"mean_epoch_s\"",
            "\"operators\"",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
    }
}

//! Traced-training benchmark, exported as `BENCH_train.json`.
//!
//! The `train_report` binary runs one seeded node-classification job
//! through the mg-obs-instrumented trainer with `MG_TRACE` active,
//! validates the emitted JSONL against the trace schema (a schema
//! regression fails the build — this is what the obs-smoke CI job
//! checks), then distils the per-epoch timings into a machine-readable
//! report:
//!
//! ```text
//! cargo run --release -p mg-bench --bin train_report
//! ```
//!
//! `MG_TRACE` chooses the trace destination (a temp-file default is
//! installed when unset — the binary's whole point is to exercise the
//! sink); `MG_BENCH_TRAIN_JSON` overrides the report path (`skip`
//! suppresses it).

use crate::opsbench::host_threads;
use mg_data::{make_node_dataset, NodeDatasetKind, NodeGenConfig};
use mg_eval::{NodeModelKind, SessionKind, TrainConfig, TrainSession};
use mg_obs::{validate_trace, TraceReport};
use std::time::Instant;

/// Everything the traced benchmark job produced.
#[derive(Clone, Debug)]
pub struct TrainBench {
    pub model: &'static str,
    pub dataset: &'static str,
    pub seed: u64,
    pub epochs_run: usize,
    pub best_val: f64,
    pub test_metric: f64,
    pub trace_path: String,
    pub report: TraceReport,
    pub total_s: f64,
}

/// Resolve the trace destination: honour an explicit `MG_TRACE`, else
/// install a temp-file default (the report exists to exercise the sink,
/// so "unset" must not mean "trace nothing").
fn trace_destination() -> String {
    match std::env::var("MG_TRACE") {
        Ok(p) if !p.is_empty() && p != "-" => p,
        _ => {
            let p = std::env::temp_dir()
                .join(format!("mg_train_report_{}.jsonl", std::process::id()))
                .to_string_lossy()
                .into_owned();
            std::env::set_var("MG_TRACE", &p);
            p
        }
    }
}

/// Run the seeded benchmark job with tracing active and validate the
/// trace it leaves behind. `scale`/`epochs` size the job (the binary
/// uses [`emit_default`]'s settings; tests shrink both).
pub fn run_job(scale: f64, epochs: usize) -> Result<TrainBench, String> {
    let trace_path = trace_destination();
    // The sink appends across runs; this report describes exactly one.
    std::fs::write(&trace_path, "").map_err(|e| format!("cannot write {trace_path}: {e}"))?;

    let ds = make_node_dataset(
        NodeDatasetKind::Cora,
        &NodeGenConfig {
            scale,
            max_feat_dim: 32,
            seed: 11,
        },
    );
    let cfg = TrainConfig {
        epochs,
        lr: 0.02,
        patience: epochs,
        hidden: 16,
        levels: 2,
        seed: 1,
        ..Default::default()
    };
    let started = Instant::now();
    let res = TrainSession::new(
        SessionKind::NodeClassification(NodeModelKind::AdamGnn),
        &cfg,
    )
    .traced(false)
    .run(&ds)
    .map_err(|e| format!("training failed: {e}"))?;
    let total_s = started.elapsed().as_secs_f64();

    let text = std::fs::read_to_string(&trace_path)
        .map_err(|e| format!("cannot read trace {trace_path}: {e}"))?;
    let report = validate_trace(&text).map_err(|e| format!("invalid trace {trace_path}: {e}"))?;
    if report.epochs != res.epochs_run {
        return Err(format!(
            "trace has {} epoch records but the trainer ran {} epochs",
            report.epochs, res.epochs_run
        ));
    }
    if report.run_starts != 1 || report.run_ends != 1 {
        return Err(format!(
            "expected exactly one run_start/run_end, got {}/{}",
            report.run_starts, report.run_ends
        ));
    }
    Ok(TrainBench {
        model: "AdamGNN",
        dataset: "cora_synthetic",
        seed: cfg.seed,
        epochs_run: res.epochs_run,
        best_val: res.val_metric.expect("node classification has validation"),
        test_metric: res.test_metric,
        trace_path,
        report,
        total_s,
    })
}

/// Render the `BENCH_train.json` document. Epoch timings are train+eval
/// wall time per epoch in milliseconds, straight from the trace.
pub fn to_json(b: &TrainBench) -> String {
    let epoch_ms: Vec<f64> = b
        .report
        .epoch_train_ns
        .iter()
        .zip(&b.report.epoch_eval_ns)
        .map(|(&t, &e)| (t + e) as f64 / 1e6)
        .collect();
    let mean_epoch_ms = epoch_ms.iter().sum::<f64>() / epoch_ms.len().max(1) as f64;
    let epoch_list = epoch_ms
        .iter()
        .map(|ms| format!("{ms:.3}"))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\n  \"task\": \"node_classification\",\n  \"model\": \"{}\",\n  \
         \"dataset\": \"{}\",\n  \"seed\": {},\n  \"parallel_feature\": {},\n  \
         \"host_threads\": {},\n  \"epochs_run\": {},\n  \"best_val\": {:.6},\n  \
         \"test_metric\": {:.6},\n  \"trace_path\": \"{}\",\n  \"trace_lines\": {},\n  \
         \"epoch_ms\": [{epoch_list}],\n  \"mean_epoch_ms\": {mean_epoch_ms:.3},\n  \
         \"total_s\": {:.3}\n}}\n",
        b.model,
        b.dataset,
        b.seed,
        cfg!(feature = "parallel"),
        host_threads(),
        b.epochs_run,
        b.best_val,
        b.test_metric,
        b.trace_path.replace('\\', "/"),
        b.report.lines,
        b.total_s,
    )
}

/// Run the default-size job and write `BENCH_train.json` (path
/// overridable via `MG_BENCH_TRAIN_JSON`; `skip` suppresses the file but
/// still runs and validates the trace). Returns a process exit code.
pub fn emit_default() -> i32 {
    let b = match run_job(0.08, 30) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("train_report: {e}");
            return 1;
        }
    };
    eprintln!(
        "train_report: {} epochs, best val {:.4}, test {:.4}, mean epoch {:.1} ms, \
         trace {} ({} lines)",
        b.epochs_run,
        b.best_val,
        b.test_metric,
        b.report
            .epoch_train_ns
            .iter()
            .zip(&b.report.epoch_eval_ns)
            .map(|(&t, &e)| (t + e) as f64 / 1e6)
            .sum::<f64>()
            / b.epochs_run.max(1) as f64,
        b.trace_path,
        b.report.lines,
    );
    let path = std::env::var("MG_BENCH_TRAIN_JSON").unwrap_or_else(|_| "BENCH_train.json".into());
    if path == "skip" {
        return 0;
    }
    let json = to_json(&b);
    match std::fs::write(&path, &json) {
        Ok(()) => {
            eprintln!("wrote {path}");
            0
        }
        Err(e) => {
            eprintln!("failed to write {path}: {e}");
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One small end-to-end pass: job runs, trace validates, JSON has
    /// the promised fields. Uses a private MG_TRACE path so parallel
    /// test binaries cannot collide on the temp default.
    #[test]
    fn small_job_produces_valid_report() {
        let path =
            std::env::temp_dir().join(format!("mg_train_report_test_{}.jsonl", std::process::id()));
        std::env::set_var("MG_TRACE", &path);
        let b = run_job(0.03, 3).expect("job runs");
        std::env::remove_var("MG_TRACE");
        assert_eq!(b.epochs_run, 3);
        assert_eq!(b.report.epochs, 3);
        let json = to_json(&b);
        for key in [
            "\"task\"",
            "\"model\"",
            "\"epochs_run\"",
            "\"epoch_ms\"",
            "\"mean_epoch_ms\"",
            "\"trace_lines\"",
            "\"total_s\"",
            "\"parallel_feature\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let _ = std::fs::remove_file(&path);
    }
}

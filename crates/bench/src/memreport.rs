//! Retained-vs-checkpointed peak-tape-memory benchmark, exported as
//! `BENCH_mem.json`.
//!
//! The `mem_report` binary runs the three mg-verify fixtures (node
//! classification, link prediction, graph classification — the exact
//! runs pinned by the golden-trace suite) twice each: once on the
//! retaining tape and once with per-level checkpointing forced on via
//! `with_ckpt_tape`. For every task it reports the maximum
//! `peak_tape_bytes` any epoch recorded (harvested from the mg-obs trace
//! the run emits under `MG_TRACE`), the reduction checkpointing bought,
//! and whether the two runs' training traces stayed bitwise identical —
//! the whole point of recompute-on-backward is that they must.
//!
//! ```text
//! cargo run --release -p mg-bench --bin mem_report
//! ```
//!
//! `MG_BENCH_MEM_JSON` overrides the report path (`skip` suppresses the
//! file but still runs and checks everything). The node-classification
//! fixture (2-level AdamGNN) must show at least a 30% peak reduction or
//! the job fails — that floor is what keeps the checkpoint scopes
//! meaningfully placed as the forward pass evolves.

use adamgnn_core::with_ckpt_tape;
use mg_obs::validate_trace;
use mg_verify::{graph_cls_run, link_pred_run, node_cls_run, Compare, Golden};

/// Minimum acceptable peak reduction on the node-classification fixture.
pub const NC_REDUCTION_FLOOR: f64 = 0.30;

/// One task's retained-vs-checkpointed measurement.
#[derive(Clone, Debug)]
pub struct TaskMem {
    pub task: &'static str,
    pub epochs: usize,
    /// max over epochs of `peak_tape_bytes`, retaining tape.
    pub retained_peak: u64,
    /// max over epochs of `peak_tape_bytes`, checkpointed tape.
    pub checkpointed_peak: u64,
    /// Whether the two runs' training traces compared bitwise equal.
    pub bitwise_identical: bool,
}

impl TaskMem {
    /// Fractional peak reduction (0.42 = checkpointing dropped the
    /// high-water mark by 42%).
    pub fn reduction(&self) -> f64 {
        if self.retained_peak == 0 {
            return 0.0;
        }
        1.0 - self.checkpointed_peak as f64 / self.retained_peak as f64
    }
}

/// Run one fixture with tracing into `trace_path` and harvest the
/// epoch-peak maximum. The trace file is truncated first so each
/// measurement describes exactly one run.
fn measured_run(
    run: fn(u64) -> Golden,
    ckpt: bool,
    trace_path: &str,
) -> Result<(Golden, u64, usize), String> {
    std::fs::write(trace_path, "").map_err(|e| format!("cannot write {trace_path}: {e}"))?;
    let golden = with_ckpt_tape(ckpt, || run(0));
    let text = std::fs::read_to_string(trace_path)
        .map_err(|e| format!("cannot read trace {trace_path}: {e}"))?;
    let report = validate_trace(&text).map_err(|e| format!("invalid trace {trace_path}: {e}"))?;
    let peak = report
        .epoch_peak_tape_bytes
        .iter()
        .copied()
        .max()
        .ok_or_else(|| format!("trace {trace_path} has no epoch records"))?;
    Ok((golden, peak, report.epochs))
}

/// Measure all three fixtures. Fails if any task's checkpointed trace
/// diverges from its retained trace, if checkpointing ever *raises* a
/// peak, or if the node-classification reduction misses
/// [`NC_REDUCTION_FLOOR`].
pub fn run_all() -> Result<Vec<TaskMem>, String> {
    let trace_path = std::env::temp_dir()
        .join(format!("mg_mem_report_{}.jsonl", std::process::id()))
        .to_string_lossy()
        .into_owned();
    let prev_trace = std::env::var_os("MG_TRACE");
    std::env::set_var("MG_TRACE", &trace_path);
    let result = run_all_traced(&trace_path);
    match prev_trace {
        Some(v) => std::env::set_var("MG_TRACE", v),
        None => std::env::remove_var("MG_TRACE"),
    }
    let _ = std::fs::remove_file(&trace_path);
    result
}

type RunFn = fn(u64) -> Golden;

fn run_all_traced(trace_path: &str) -> Result<Vec<TaskMem>, String> {
    const FIXTURES: [(&str, RunFn); 3] = [
        ("node_classification", node_cls_run),
        ("link_prediction", link_pred_run),
        ("graph_classification", graph_cls_run),
    ];
    let mut out = Vec::new();
    for (task, run) in FIXTURES {
        let (retained_golden, retained_peak, epochs) = measured_run(run, false, trace_path)?;
        let (ckpt_golden, checkpointed_peak, ckpt_epochs) = measured_run(run, true, trace_path)?;
        if epochs != ckpt_epochs {
            return Err(format!(
                "{task}: retained ran {epochs} epochs but checkpointed ran {ckpt_epochs}"
            ));
        }
        let bitwise_identical = retained_golden
            .compare(&ckpt_golden, Compare::Bitwise)
            .is_ok();
        if !bitwise_identical {
            let e = retained_golden
                .compare(&ckpt_golden, Compare::Bitwise)
                .unwrap_err();
            return Err(format!("{task}: checkpointed trace diverged: {e}"));
        }
        if checkpointed_peak > retained_peak {
            return Err(format!(
                "{task}: checkpointing raised the peak ({checkpointed_peak} > {retained_peak})"
            ));
        }
        out.push(TaskMem {
            task,
            epochs,
            retained_peak,
            checkpointed_peak,
            bitwise_identical,
        });
    }
    let nc = &out[0];
    if nc.reduction() < NC_REDUCTION_FLOOR {
        return Err(format!(
            "node_classification peak reduction {:.1}% is below the {:.0}% floor \
             ({} -> {} bytes)",
            nc.reduction() * 100.0,
            NC_REDUCTION_FLOOR * 100.0,
            nc.retained_peak,
            nc.checkpointed_peak
        ));
    }
    Ok(out)
}

/// Render the `BENCH_mem.json` document.
pub fn to_json(tasks: &[TaskMem]) -> String {
    let rows = tasks
        .iter()
        .map(|t| {
            format!(
                "    {{\"task\": \"{}\", \"epochs\": {}, \"retained_peak_bytes\": {}, \
                 \"checkpointed_peak_bytes\": {}, \"reduction\": {:.4}, \
                 \"bitwise_identical\": {}}}",
                t.task,
                t.epochs,
                t.retained_peak,
                t.checkpointed_peak,
                t.reduction(),
                t.bitwise_identical
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!(
        "{{\n  \"bench\": \"peak_tape_bytes\",\n  \"parallel_feature\": {},\n  \
         \"fast_kernels_feature\": {},\n  \"nc_reduction_floor\": {:.2},\n  \
         \"tasks\": [\n{rows}\n  ]\n}}\n",
        cfg!(feature = "parallel"),
        cfg!(feature = "fast-kernels"),
        NC_REDUCTION_FLOOR,
    )
}

/// Run the three fixtures and write `BENCH_mem.json` (path overridable
/// via `MG_BENCH_MEM_JSON`; `skip` suppresses the file but still runs
/// every check). Returns a process exit code.
pub fn emit_default() -> i32 {
    let tasks = match run_all() {
        Ok(t) => t,
        Err(e) => {
            eprintln!("mem_report: {e}");
            return 1;
        }
    };
    for t in &tasks {
        eprintln!(
            "mem_report: {} peak {} -> {} bytes ({:.1}% reduction, bitwise {})",
            t.task,
            t.retained_peak,
            t.checkpointed_peak,
            t.reduction() * 100.0,
            if t.bitwise_identical {
                "ok"
            } else {
                "DIVERGED"
            },
        );
    }
    let path = std::env::var("MG_BENCH_MEM_JSON").unwrap_or_else(|_| "BENCH_mem.json".into());
    if path == "skip" {
        return 0;
    }
    let json = to_json(&tasks);
    match std::fs::write(&path, &json) {
        Ok(()) => {
            eprintln!("wrote {path}");
            0
        }
        Err(e) => {
            eprintln!("failed to write {path}: {e}");
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_math() {
        let t = TaskMem {
            task: "node_classification",
            epochs: 8,
            retained_peak: 1000,
            checkpointed_peak: 600,
            bitwise_identical: true,
        };
        assert!((t.reduction() - 0.4).abs() < 1e-12);
        let zero = TaskMem {
            retained_peak: 0,
            checkpointed_peak: 0,
            ..t
        };
        assert_eq!(zero.reduction(), 0.0);
    }

    #[test]
    fn json_has_promised_fields() {
        let tasks = vec![TaskMem {
            task: "node_classification",
            epochs: 8,
            retained_peak: 1000,
            checkpointed_peak: 600,
            bitwise_identical: true,
        }];
        let json = to_json(&tasks);
        for key in [
            "\"bench\"",
            "\"parallel_feature\"",
            "\"fast_kernels_feature\"",
            "\"nc_reduction_floor\"",
            "\"retained_peak_bytes\"",
            "\"checkpointed_peak_bytes\"",
            "\"reduction\"",
            "\"bitwise_identical\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}

//! Criterion benchmark of one full training epoch per pooling model —
//! the measured quantity behind the paper's running-time Table 4.
//!
//! The dataset is a small NCI1-like sample so the benchmark stays fast;
//! run `cargo run --release -p mg-bench --bin table4` for the full table.

use criterion::{criterion_group, criterion_main, Criterion};
use mg_data::{make_graph_dataset, GraphDatasetKind, GraphGenConfig};
use mg_eval::graph_tasks::build_contexts;
use mg_eval::{GraphModelKind, TrainConfig};
use mg_tensor::{AdamConfig, ParamStore, Tape};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::rc::Rc;

fn bench_epoch(c: &mut Criterion) {
    let ds = make_graph_dataset(
        GraphDatasetKind::Nci1,
        &GraphGenConfig {
            scale: 0.01,
            max_nodes: 40,
            seed: 1,
        },
    );
    let contexts = build_contexts(&ds);
    let mut group = c.benchmark_group("train_epoch_nci1_sample");
    group.sample_size(10);
    for kind in [
        GraphModelKind::DiffPool,
        GraphModelKind::SagPool,
        GraphModelKind::TopKPool,
        GraphModelKind::StructPool,
        GraphModelKind::AdamGnn,
    ] {
        let cfg = TrainConfig {
            levels: 3,
            hidden: 32,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let model = kind.build(&mut store, ds.feat_dim, 32, 2, &cfg, &mut rng);
        group.bench_function(kind.name(), |bencher| {
            bencher.iter(|| {
                // one mini-batch step over the whole sample = one epoch here
                let tape = Tape::new();
                let bind = store.bind(&tape);
                let mut losses = Vec::new();
                for (ctx, label) in &contexts {
                    let out = model.forward(&tape, &bind, ctx, true, &mut rng);
                    let ce =
                        tape.cross_entropy(out.logits, Rc::new(vec![*label]), Rc::new(vec![0]));
                    losses.push(match out.aux_loss {
                        Some(aux) => tape.add(ce, aux),
                        None => ce,
                    });
                }
                let mut sum = losses[0];
                for &l in &losses[1..] {
                    sum = tape.add(sum, l);
                }
                let loss = tape.scale(sum, 1.0 / losses.len() as f64);
                let mut grads = tape.backward(loss);
                store.step(&mut grads, &bind, &AdamConfig::with_lr(0.01));
                black_box(());
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_epoch);
criterion_main!(benches);

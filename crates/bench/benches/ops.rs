//! Criterion micro-benchmarks for the autograd substrate: the operations
//! that dominate AdamGNN training time (spmm, matmul, segment softmax,
//! fitness scoring, full forward/backward), plus serial-vs-parallel
//! comparisons of every mg-runtime-dispatched kernel. Finishes by
//! writing `BENCH_ops.json` (see `mg_bench::opsbench`); set
//! `MG_BENCH_JSON=<path>` to also dump the raw criterion measurements.

use criterion::{criterion_group, criterion_main, Criterion};
use mg_graph::{gcn_norm, Topology};
use mg_runtime::{with_pool, Pool};
use mg_tensor::{Matrix, Tape};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;
use std::rc::Rc;
use std::sync::Arc;

fn random_graph(n: usize, m: usize, seed: u64) -> Topology {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(m + n);
    for v in 1..n as u32 {
        edges.push((rng.random_range(0..v), v));
    }
    while edges.len() < m {
        let u = rng.random_range(0..n as u32);
        let v = rng.random_range(0..n as u32);
        if u != v {
            edges.push((u, v));
        }
    }
    Topology::from_edges(n, &edges)
}

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let a = Matrix::uniform(512, 256, -1.0, 1.0, &mut rng);
    let b = Matrix::uniform(256, 64, -1.0, 1.0, &mut rng);
    c.bench_function("matmul_512x256x64", |bencher| {
        bencher.iter(|| black_box(a.matmul(&b)))
    });
}

fn bench_spmm(c: &mut Criterion) {
    let g = random_graph(2000, 8000, 1);
    let norm = gcn_norm(&g);
    let mut rng = StdRng::seed_from_u64(2);
    let x = Matrix::uniform(2000, 64, -1.0, 1.0, &mut rng);
    c.bench_function("spmm_2k_nodes_8k_edges_d64", |bencher| {
        bencher.iter(|| black_box(norm.csr.spmm(&norm.values, &x)))
    });
}

fn bench_gcn_forward_backward(c: &mut Criterion) {
    use mg_nn::{Activation, GcnLayer, GraphCtx};
    use mg_tensor::ParamStore;
    let g = random_graph(2000, 8000, 3);
    let mut rng = StdRng::seed_from_u64(4);
    let x = Matrix::uniform(2000, 64, -1.0, 1.0, &mut rng);
    let ctx = GraphCtx::new(g, x);
    let mut store = ParamStore::new();
    let layer = GcnLayer::new(&mut store, "b", 64, 64, Activation::Relu, &mut rng);
    c.bench_function("gcn_layer_fwd_bwd_2k_nodes", |bencher| {
        bencher.iter(|| {
            let tape = Tape::new();
            let bind = store.bind(&tape);
            let xv = ctx.x_var(&tape);
            let h = layer.forward(&tape, &bind, &ctx, xv);
            let loss = tape.mean_all(h);
            black_box(tape.backward(loss));
        })
    });
}

fn bench_fitness(c: &mut Criterion) {
    use adamgnn_core::{pair_fitness, AttentionParams, EgoPairs};
    use mg_tensor::ParamStore;
    let g = random_graph(2000, 8000, 5);
    let pairs = EgoPairs::build(&g, 1);
    let mut rng = StdRng::seed_from_u64(6);
    let h0 = Matrix::uniform(2000, 64, -1.0, 1.0, &mut rng);
    let mut store = ParamStore::new();
    let params = AttentionParams::new(&mut store, "fit", 64, &mut rng);
    c.bench_function("adamgnn_pair_fitness_16k_pairs", |bencher| {
        bencher.iter(|| {
            let tape = Tape::new();
            let bind = store.bind(&tape);
            let h = tape.constant(h0.clone());
            black_box(pair_fitness(&tape, &bind, &params, &pairs, h, 2000));
        })
    });
}

fn bench_segment_softmax(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let scores = Matrix::uniform(16000, 1, -2.0, 2.0, &mut rng);
    let seg: Rc<Vec<usize>> = Rc::new((0..16000).map(|_| rng.random_range(0..2000)).collect());
    c.bench_function("segment_softmax_16k_entries", |bencher| {
        bencher.iter(|| {
            let tape = Tape::new();
            let s = tape.constant(scores.clone());
            black_box(tape.segment_softmax(s, seg.clone(), 2000));
        })
    });
}

/// Serial vs parallel for the runtime-dispatched dense kernels: the same
/// closure timed under a one-thread pool (exact serial path) and under
/// the `MG_NUM_THREADS`-sized pool (default 4). Without the `parallel`
/// feature both halves run serial — the pair then doubles as a
/// dispatch-overhead check.
fn bench_matmul_serial_vs_parallel(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(8);
    let a = Matrix::uniform(512, 512, -1.0, 1.0, &mut rng);
    let b = Matrix::uniform(512, 512, -1.0, 1.0, &mut rng);
    let serial = Arc::new(Pool::new(1));
    let par = Arc::new(Pool::new(mg_bench::opsbench::pool_threads()));
    c.bench_function("matmul_512x512x512/serial", |bencher| {
        bencher.iter(|| with_pool(serial.clone(), || black_box(a.matmul(&b))))
    });
    let name = format!("matmul_512x512x512/par{}", par.threads());
    c.bench_function(&name, |bencher| {
        bencher.iter(|| with_pool(par.clone(), || black_box(a.matmul(&b))))
    });
}

/// Serial vs parallel for the sparse kernels (spmm forward and its
/// transpose), same pool protocol as the matmul pair.
fn bench_spmm_serial_vs_parallel(c: &mut Criterion) {
    let g = random_graph(2000, 8000, 9);
    let norm = gcn_norm(&g);
    let mut rng = StdRng::seed_from_u64(10);
    let x = Matrix::uniform(2000, 64, -1.0, 1.0, &mut rng);
    let serial = Arc::new(Pool::new(1));
    let par = Arc::new(Pool::new(mg_bench::opsbench::pool_threads()));
    c.bench_function("spmm_2k_nodes_8k_edges_d64/serial", |bencher| {
        bencher.iter(|| {
            with_pool(serial.clone(), || {
                black_box(norm.csr.spmm(&norm.values, &x))
            })
        })
    });
    let name = format!("spmm_2k_nodes_8k_edges_d64/par{}", par.threads());
    c.bench_function(&name, |bencher| {
        bencher.iter(|| with_pool(par.clone(), || black_box(norm.csr.spmm(&norm.values, &x))))
    });
    c.bench_function("spmm_t_2k_nodes_8k_edges_d64/serial", |bencher| {
        bencher.iter(|| {
            with_pool(serial.clone(), || {
                black_box(norm.csr.spmm_t(&norm.values, &x))
            })
        })
    });
    let name = format!("spmm_t_2k_nodes_8k_edges_d64/par{}", par.threads());
    c.bench_function(&name, |bencher| {
        bencher.iter(|| with_pool(par.clone(), || black_box(norm.csr.spmm_t(&norm.values, &x))))
    });
}

/// Not a benchmark: runs the opsbench suite once at the end of the run
/// and writes `BENCH_ops.json` with serial/parallel ns-per-op medians.
fn emit_bench_ops_json(_c: &mut Criterion) {
    mg_bench::opsbench::emit_default();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_matmul, bench_spmm, bench_gcn_forward_backward, bench_fitness,
              bench_segment_softmax, bench_matmul_serial_vs_parallel,
              bench_spmm_serial_vs_parallel, emit_bench_ops_json
}
criterion_main!(benches);

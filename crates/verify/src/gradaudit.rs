//! Model-level gradient audit: the whole AdamGNN objective — task loss
//! plus `γ L_KL + δ L_R` — as one scalar function of *all* parameters,
//! checked against central differences on a sampled subset of entries,
//! plus a decomposition-consistency check.
//!
//! The two checks are complementary. Gradcheck catches a wrong backward
//! anywhere in the composed pipeline, but it cannot catch a bug applied
//! consistently to both the analytic and numeric paths — e.g. a sign
//! flip in how `total_loss` composes `L_R` changes the objective *and*
//! its gradient coherently. The consistency check closes that hole by
//! recomposing `L_task + γ L_KL + δ L_R` from the independently exposed
//! per-term values and comparing against the production total.

use adamgnn_core::{
    decomposed_loss, decomposed_loss_frozen, record_loss_freeze, AdamGnnNode, LossWeights,
    ReconPlan,
};
use mg_nn::GraphCtx;
use mg_tensor::{check_gradients_sampled, Binding, GradCheckReport, ParamStore, Tape};
use std::rc::Rc;

/// Knobs for [`audit_node_model`].
#[derive(Clone, Copy, Debug)]
pub struct AuditConfig {
    /// Central-difference step.
    pub eps: f64,
    /// Entries sampled per parameter matrix (small matrices are checked
    /// exhaustively).
    pub samples_per_param: usize,
    /// Seed for the entry sampler.
    pub seed: u64,
    /// Gradient tolerance (relative); the ISSUE's acceptance bar is 1e-4.
    pub grad_tol: f64,
    /// Tolerance on `|total - (task + γ·kl + δ·recon)|`, relative to the
    /// total's magnitude. The terms are composed in the same order as
    /// `total_loss`, so the honest error is rounding-level.
    pub consistency_tol: f64,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            eps: 1e-5,
            samples_per_param: 4,
            seed: 0xad17,
            grad_tol: 1e-4,
            consistency_tol: 1e-12,
        }
    }
}

/// Everything the audit measured.
#[derive(Clone, Copy, Debug)]
pub struct AuditReport {
    /// Sampled whole-model gradient check over every parameter.
    pub grad: GradCheckReport,
    /// Per-term values from the decomposition entry point.
    pub task: f64,
    pub kl: f64,
    pub recon: f64,
    /// Operator-specific auxiliary term at its final weight; zero for
    /// operators without one.
    pub aux: f64,
    pub total: f64,
    /// `|total - (task + γ·kl + δ·recon + aux)| / max(1, |total|)`.
    pub decomposition_err: f64,
}

impl AuditReport {
    /// True when both the gradient check and the decomposition
    /// consistency check pass.
    pub fn ok(&self, cfg: &AuditConfig) -> bool {
        self.problems(cfg).is_empty()
    }

    /// Human-readable failures, empty when the audit passes.
    pub fn problems(&self, cfg: &AuditConfig) -> Vec<String> {
        let mut out = Vec::new();
        if !self.grad.ok(cfg.grad_tol) {
            out.push(format!(
                "model-level gradcheck failed: max_abs_err {:.3e}, max_rel_err {:.3e} (tol {:.1e}, {} entries)",
                self.grad.max_abs_err, self.grad.max_rel_err, cfg.grad_tol, self.grad.entries_checked
            ));
        }
        // NaN must count as a failure, hence not `err >= tol`
        if !self.decomposition_err.is_finite() || self.decomposition_err >= cfg.consistency_tol {
            out.push(format!(
                "loss decomposition inconsistent: total {} vs task {} + γ·kl {} + δ·recon {} + aux {} (rel err {:.3e})",
                self.total, self.task, self.kl, self.recon, self.aux, self.decomposition_err
            ));
        }
        if !(self.task.is_finite()
            && self.kl.is_finite()
            && self.recon.is_finite()
            && self.aux.is_finite())
        {
            out.push(format!(
                "non-finite loss term: task {} kl {} recon {} aux {}",
                self.task, self.kl, self.recon, self.aux
            ));
        }
        out
    }
}

/// Audit an [`AdamGnnNode`] on a fixed graph/targets/plan: sampled
/// central-difference check of `∂ total / ∂ θ` for every parameter matrix
/// `θ`, and recomposition of the three exposed loss terms against the
/// production total.
#[allow(clippy::too_many_arguments)]
pub fn audit_node_model(
    store: &ParamStore,
    model: &AdamGnnNode,
    ctx: &GraphCtx,
    targets: &Rc<Vec<usize>>,
    nodes: &Rc<Vec<usize>>,
    plan: &ReconPlan,
    weights: &LossWeights,
    cfg: &AuditConfig,
) -> AuditReport {
    // Record the discrete/detached pieces once at the current parameters:
    // the pooling structure (ego selection is piecewise-constant, Â_k is
    // detached from the tape) and the DEC target P (detached inside the
    // KL op). The optimiser's gradient is the gradient of the objective
    // with all of those held fixed — that is the function the central
    // differences must difference.
    let freeze = {
        let tape = Tape::new();
        let bind = store.bind(&tape);
        record_loss_freeze(&tape, &bind, model, ctx)
    };

    // Gradient pillar: every parameter becomes a gradcheck input, in
    // store-registration order so Binding::from_vars lines them back up.
    let inputs = store.snapshot();
    let grad = check_gradients_sampled(
        &inputs,
        cfg.eps,
        cfg.samples_per_param,
        cfg.seed,
        |tape, vars| {
            let bind = Binding::from_vars(vars.to_vec());
            let (breakdown, _) = decomposed_loss_frozen(
                tape, &bind, model, ctx, targets, nodes, plan, weights, &freeze,
            );
            breakdown.total
        },
    );

    // Consistency pillar: independent recomposition of the terms.
    let tape = Tape::new();
    let bind = store.bind(&tape);
    let (breakdown, _) = decomposed_loss(&tape, &bind, model, ctx, targets, nodes, plan, weights);
    let task = tape.value(breakdown.task).scalar();
    let kl = tape.value(breakdown.kl).scalar();
    let recon = tape.value(breakdown.recon).scalar();
    let aux = breakdown.aux.map_or(0.0, |a| tape.value(a).scalar());
    let total = tape.value(breakdown.total).scalar();
    let expected = task + weights.gamma * kl + weights.delta * recon + aux;
    let decomposition_err = (total - expected).abs() / total.abs().max(1.0);

    AuditReport {
        grad,
        task,
        kl,
        recon,
        aux,
        total,
        decomposition_err,
    }
}

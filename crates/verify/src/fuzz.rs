//! Seeded end-to-end training runs shared by the golden-trace and
//! differential (serial-vs-parallel) tests.
//!
//! One fixed run per task family (node classification, link prediction,
//! graph classification) plus seed-parameterised variants for the
//! differential fuzzer. Every run goes through [`TrainSession`] in
//! mg-eval, so a run is fully described by its [`Golden`]: summary
//! metrics plus the per-epoch loss/metric trace. The serial build's
//! traces are checked in under `tests/goldens/`; the parallel build (and
//! every pool width) must reproduce them bit for bit — that is PR 1's
//! kernel-level determinism guarantee promoted to whole training loops.

use crate::golden::Golden;
use mg_data::{
    make_graph_dataset, make_node_dataset, GraphDatasetKind, GraphGenConfig, NodeDatasetKind,
    NodeGenConfig,
};
use mg_eval::{
    build_contexts, GraphModelKind, MinibatchConfig, NodeModelKind, SessionInput, SessionKind,
    TrainConfig, TrainSession, TrainTrace,
};
use std::path::PathBuf;

/// Directory holding the checked-in golden traces (repo-level
/// `tests/goldens/`), resolved relative to this crate so every test
/// binary agrees on it.
pub fn goldens_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/goldens")
}

/// Training config for the verification runs: small enough to finish in
/// seconds, big enough to exercise multi-level pooling and all three
/// loss terms.
pub fn verify_cfg(seed: u64, epochs: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        lr: 0.02,
        patience: epochs,
        hidden: 16,
        levels: 2,
        seed,
        ..Default::default()
    }
}

/// The seeded node-classification run (AdamGNN on a synthetic citation
/// graph). `variant` varies dataset and training seeds for the fuzzer;
/// variant 0 is the checked-in golden.
pub fn node_cls_run(variant: u64) -> Golden {
    let ds = make_node_dataset(
        NodeDatasetKind::Cora,
        &NodeGenConfig {
            scale: 0.05,
            max_feat_dim: 32,
            seed: 11 + variant,
        },
    );
    let res = TrainSession::new(
        SessionKind::NodeClassification(NodeModelKind::AdamGnn),
        &verify_cfg(1 + variant, 8),
    )
    .run(&ds)
    .expect("node classification failed");
    Golden::new(
        format!("node_cls_adamgnn_v{variant}"),
        vec![
            ("test_metric".into(), res.test_metric),
            ("val_metric".into(), res.val_metric.unwrap_or(f64::NAN)),
            ("epochs_run".into(), res.epochs_run as f64),
        ],
        res.trace,
    )
}

/// The seeded *sampled-minibatch* node-classification run: the same
/// fixture as [`node_cls_run`] trained through ego-subgraph minibatches
/// (`TrainSession::minibatch`). Not pinned by a checked-in golden —
/// sampled batch composition is a new RNG consumer, so the full-batch
/// goldens say nothing about it — but the differential suite holds it to
/// the same determinism contract: bitwise repeatable within a build and
/// across parallel pool widths.
pub fn sampled_node_cls_run(variant: u64) -> Golden {
    let ds = make_node_dataset(
        NodeDatasetKind::Cora,
        &NodeGenConfig {
            scale: 0.05,
            max_feat_dim: 32,
            seed: 11 + variant,
        },
    );
    let res = TrainSession::new(
        SessionKind::NodeClassification(NodeModelKind::AdamGnn),
        &verify_cfg(1 + variant, 8),
    )
    .minibatch(MinibatchConfig {
        batch_size: 32,
        fanouts: vec![8, 8],
    })
    .run(&ds)
    .expect("sampled node classification failed");
    Golden::new(
        format!("sampled_node_cls_adamgnn_v{variant}"),
        vec![
            ("test_metric".into(), res.test_metric),
            ("val_metric".into(), res.val_metric.unwrap_or(f64::NAN)),
            ("epochs_run".into(), res.epochs_run as f64),
        ],
        res.trace,
    )
}

/// The seeded link-prediction run (AdamGNN encoder, inner-product
/// decoder).
pub fn link_pred_run(variant: u64) -> Golden {
    let ds = make_node_dataset(
        NodeDatasetKind::Emails,
        &NodeGenConfig {
            scale: 0.05,
            max_feat_dim: 32,
            seed: 23 + variant,
        },
    );
    let res = TrainSession::new(
        SessionKind::LinkPrediction(NodeModelKind::AdamGnn),
        &verify_cfg(2 + variant, 6),
    )
    .run(&ds)
    .expect("link prediction failed");
    Golden::new(
        format!("link_pred_adamgnn_v{variant}"),
        vec![
            ("test_metric".into(), res.test_metric),
            ("val_metric".into(), res.val_metric.unwrap_or(f64::NAN)),
            ("epochs_run".into(), res.epochs_run as f64),
        ],
        res.trace,
    )
}

/// The seeded graph-classification run (AdamGNN on motif-labelled
/// molecule-like graphs). `epoch_seconds` is wall clock and deliberately
/// NOT part of the golden.
pub fn graph_cls_run(variant: u64) -> Golden {
    let ds = make_graph_dataset(
        GraphDatasetKind::Mutag,
        &GraphGenConfig {
            scale: 0.04,
            max_nodes: 20,
            seed: 5 + variant,
        },
    );
    let contexts = build_contexts(&ds);
    let res = TrainSession::new(
        SessionKind::GraphClassification(GraphModelKind::AdamGnn),
        &verify_cfg(3 + variant, 4),
    )
    .run(SessionInput::Prebuilt {
        contexts: &contexts,
        feat_dim: ds.feat_dim,
    })
    .expect("graph classification failed");
    Golden::new(
        format!("graph_cls_adamgnn_v{variant}"),
        vec![
            ("test_accuracy".into(), res.test_metric),
            ("val_accuracy".into(), res.val_metric.unwrap_or(f64::NAN)),
        ],
        res.trace,
    )
}

/// Bitwise comparison of two traces; `Err` pinpoints the first
/// divergence (epoch and which scalar).
pub fn assert_traces_bitwise(label: &str, a: &TrainTrace, b: &TrainTrace) -> Result<(), String> {
    if a.len() != b.len() {
        return Err(format!(
            "{label}: trace lengths differ ({} vs {})",
            a.len(),
            b.len()
        ));
    }
    for (ra, rb) in a.records.iter().zip(&b.records) {
        if ra.epoch != rb.epoch {
            return Err(format!(
                "{label}: epoch index diverged ({} vs {})",
                ra.epoch, rb.epoch
            ));
        }
        if ra.loss.to_bits() != rb.loss.to_bits() {
            return Err(format!(
                "{label}: epoch {} loss diverged: {:?} ({:016x}) vs {:?} ({:016x})",
                ra.epoch,
                ra.loss,
                ra.loss.to_bits(),
                rb.loss,
                rb.loss.to_bits()
            ));
        }
        if ra.val.to_bits() != rb.val.to_bits() {
            return Err(format!(
                "{label}: epoch {} val diverged: {:?} ({:016x}) vs {:?} ({:016x})",
                ra.epoch,
                ra.val,
                ra.val.to_bits(),
                rb.val,
                rb.val.to_bits()
            ));
        }
    }
    Ok(())
}

/// Run `f` with the ambient kernel pool overridden to `threads` threads
/// (parallel builds; the serial build has no pool to override).
#[cfg(feature = "parallel")]
pub fn with_threads<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    mg_runtime::with_pool(std::sync::Arc::new(mg_runtime::Pool::new(threads)), f)
}

//! Permutation machinery for the metamorphic invariants.
//!
//! AdamGNN is a function of an *abstract* graph: relabelling node ids
//! must permute node-level outputs the same way and leave every scalar
//! (loss terms, readouts) unchanged up to floating-point reassociation —
//! the pooling path has no positional dependence (cluster-based pooling
//! is permutation equivariant, the property ASAP verifies for its own
//! pooling). These helpers build the relabelled inputs and measure
//! row-mapped differences; the proptests live in `tests/` at the repo
//! root.

use mg_graph::Topology;
use mg_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A uniformly random permutation of `0..n` (Fisher–Yates, seeded).
pub fn random_permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        perm.swap(i, j);
    }
    perm
}

/// Inverse permutation: `invert(p)[p[i]] == i`.
pub fn invert(perm: &[usize]) -> Vec<usize> {
    let mut inv = vec![0usize; perm.len()];
    for (i, &p) in perm.iter().enumerate() {
        inv[p] = i;
    }
    inv
}

/// Relabel a topology: node `i` becomes node `perm[i]`.
pub fn permute_topology(g: &Topology, perm: &[usize]) -> Topology {
    let edges: Vec<(u32, u32)> = g
        .edges()
        .iter()
        .map(|&(u, v)| (perm[u as usize] as u32, perm[v as usize] as u32))
        .collect();
    Topology::from_edges(g.n(), &edges)
}

/// Reorder rows to match a relabelling: output row `perm[i]` is input
/// row `i` (features of node `i` move with the node).
pub fn permute_rows(m: &Matrix, perm: &[usize]) -> Matrix {
    assert_eq!(m.rows(), perm.len(), "permutation length mismatch");
    let mut out = Matrix::zeros(m.rows(), m.cols());
    for (i, &p) in perm.iter().enumerate() {
        let src = m.row(i);
        let (r, c) = (p, m.cols());
        out.data_mut()[r * c..(r + 1) * c].copy_from_slice(src);
    }
    out
}

/// `max_{i,j} |orig[i][j] - permuted[perm[i]][j]|` — zero iff the
/// permuted output is exactly the row-relabelled original.
pub fn max_row_mapped_diff(orig: &Matrix, permuted: &Matrix, perm: &[usize]) -> f64 {
    assert_eq!(orig.shape(), permuted.shape());
    assert_eq!(orig.rows(), perm.len());
    let mut max = 0.0f64;
    for (i, &p) in perm.iter().enumerate() {
        for (a, b) in orig.row(i).iter().zip(permuted.row(p)) {
            let d = (a - b).abs();
            if d.is_nan() {
                return f64::INFINITY;
            }
            max = max.max(d);
        }
    }
    max
}

/// Map a node-id set through the permutation and sort, for comparing
/// selected ego sets across a relabelling.
pub fn map_ids(ids: &[usize], perm: &[usize]) -> Vec<usize> {
    let mut out: Vec<usize> = ids.iter().map(|&i| perm[i]).collect();
    out.sort_unstable();
    out
}

/// The coarse-level permutation induced by `perm` when both runs anchor
/// their coarse columns at corresponding nodes: coarse column `c` of the
/// base run (anchored at node `base_cols[c]`) corresponds to the
/// relabelled run's column anchored at `perm[base_cols[c]]`. Returns
/// `None` when some anchor has no counterpart — the two runs pooled
/// different structures.
pub fn induced_coarse_perm(
    base_cols: &[usize],
    perm_cols: &[usize],
    perm: &[usize],
) -> Option<Vec<usize>> {
    if base_cols.len() != perm_cols.len() {
        return None;
    }
    let mut pos = std::collections::HashMap::with_capacity(perm_cols.len());
    for (c, &a) in perm_cols.iter().enumerate() {
        pos.insert(a, c);
    }
    base_cols
        .iter()
        .map(|&a| pos.get(&perm[a]).copied())
        .collect()
}

/// Whether two pooling hierarchies related by the node relabelling `perm`
/// selected the same discrete structure at *every* level: matching ego
/// sets under the (induced) permutation and corresponding column anchors
/// level by level. Each level is `(egos, col_base)` in the previous
/// level's indexing.
///
/// Ego selection breaks exact fitness ties lexicographically by node id
/// (by design) and near-ties can flip when sums re-associate under a
/// relabelling, so equivariance of the continuous outputs is only claimed
/// conditional on this returning true — metamorphic tests discard the
/// unstable cases.
pub fn pooling_structures_match(
    base: &[(Vec<usize>, Vec<usize>)],
    relabelled: &[(Vec<usize>, Vec<usize>)],
    perm: &[usize],
) -> bool {
    if base.len() != relabelled.len() {
        return false;
    }
    let mut cur: Vec<usize> = perm.to_vec();
    for ((egos_a, cols_a), (egos_b, cols_b)) in base.iter().zip(relabelled) {
        let mut egos_b_sorted = egos_b.clone();
        egos_b_sorted.sort_unstable();
        if map_ids(egos_a, &cur) != egos_b_sorted {
            return false;
        }
        match induced_coarse_perm(cols_a, cols_b, &cur) {
            Some(next) => cur = next,
            None => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_is_a_bijection() {
        let p = random_permutation(20, 3);
        let mut seen = [false; 20];
        for &x in &p {
            assert!(!seen[x]);
            seen[x] = true;
        }
        let inv = invert(&p);
        for i in 0..20 {
            assert_eq!(inv[p[i]], i);
        }
    }

    #[test]
    fn permuted_topology_preserves_degree_multiset() {
        let g = Topology::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 3)]);
        let perm = random_permutation(5, 7);
        let pg = permute_topology(&g, &perm);
        assert_eq!(g.edges().len(), pg.edges().len());
        for (u, &pu) in perm.iter().enumerate() {
            assert_eq!(
                g.neighbors(u).count(),
                pg.neighbors(pu).count(),
                "degree of node {u} changed under relabelling"
            );
        }
    }

    #[test]
    fn permute_rows_then_map_back_is_identity() {
        let m = Matrix::from_fn(4, 3, |i, j| (i * 10 + j) as f64);
        let perm = vec![2usize, 0, 3, 1];
        let pm = permute_rows(&m, &perm);
        assert_eq!(max_row_mapped_diff(&m, &pm, &perm), 0.0);
        for (i, &pi) in perm.iter().enumerate() {
            assert_eq!(pm.row(pi), m.row(i));
        }
    }

    #[test]
    fn induced_perm_tracks_anchors_and_detects_mismatch() {
        // nodes 0..4 relabelled by perm; base columns anchored at 2 and 0
        let perm = vec![3usize, 4, 1, 0, 2];
        // relabelled side anchors the same structure at perm[2]=1, perm[0]=3
        assert_eq!(
            induced_coarse_perm(&[2, 0], &[3, 1], &perm),
            Some(vec![1, 0])
        );
        // anchor 4 has no counterpart on the other side
        assert_eq!(induced_coarse_perm(&[2, 4], &[3, 1], &perm), None);
        assert_eq!(induced_coarse_perm(&[2], &[3, 1], &perm), None);
    }

    #[test]
    fn pooling_match_walks_levels_through_induced_perms() {
        let perm = vec![3usize, 4, 1, 0, 2];
        // level 1: egos {2}, columns [2 (ego), 0, 4 (retained)]
        let base = vec![
            (vec![2usize], vec![2usize, 0, 4]),
            // level 2 in coarse ids: ego column 0, retained column 2
            (vec![0usize], vec![0usize, 2]),
        ];
        // relabelled: ego perm[2]=1, columns [1, 3, 2]; induced coarse perm
        // maps base coarse [0,1,2] -> [0,1,2] (anchor order preserved here)
        let relabelled = vec![
            (vec![1usize], vec![1usize, 3, 2]),
            (vec![0usize], vec![0usize, 2]),
        ];
        assert!(pooling_structures_match(&base, &relabelled, &perm));
        // flip the level-2 ego: structures no longer correspond
        let mut bad = relabelled.clone();
        bad[1].0 = vec![1];
        bad[1].1 = vec![1, 2];
        assert!(!pooling_structures_match(&base, &bad, &perm));
        // level-count mismatch is a mismatch
        assert!(!pooling_structures_match(&base[..1], &relabelled, &perm));
    }

    #[test]
    fn row_mapped_diff_detects_mismatch_and_nan() {
        let m = Matrix::from_fn(3, 2, |i, j| (i + j) as f64);
        let perm = vec![0usize, 1, 2];
        let mut other = m.clone();
        other.data_mut()[3] += 0.5;
        assert_eq!(max_row_mapped_diff(&m, &other, &perm), 0.5);
        other.data_mut()[3] = f64::NAN;
        assert_eq!(max_row_mapped_diff(&m, &other, &perm), f64::INFINITY);
    }
}

//! Golden-trace files: serialisation, comparison and the update workflow.
//!
//! A golden file pins a training run's per-epoch loss/metric trace plus
//! summary fields. The format is line-oriented JSON — one epoch per line
//! — so a failed comparison can print a unified diff a human can read.
//! Every scalar is stored twice: a human-readable `value` and the exact
//! IEEE-754 `bits` in hex. The bits are authoritative: bitwise
//! comparisons (the serial-vs-parallel determinism guarantee) decode
//! them, so the goldens survive any float-formatting drift.
//!
//! Workflow: run with `MG_UPDATE_GOLDENS=1` to (re)generate; without it,
//! a missing golden is an error telling you to generate one, and a
//! mismatch prints per-field detail plus the diff.

use mg_eval::TrainTrace;
use std::fmt::Write as _;
use std::path::Path;

/// A named training trace plus summary fields, as stored in a golden.
#[derive(Clone, Debug, PartialEq)]
pub struct Golden {
    pub name: String,
    /// Summary scalars (final metrics, epochs run, ...), in a fixed order.
    pub fields: Vec<(String, f64)>,
    pub trace: TrainTrace,
}

/// How to compare an actual trace against the checked-in golden.
#[derive(Clone, Copy, Debug)]
pub enum Compare {
    /// Every bit equal — the serial-vs-parallel determinism contract.
    Bitwise,
    /// Per-scalar tolerance: `|a - b| <= tol * max(1, |a|, |b|)`.
    Tolerance(f64),
}

impl Golden {
    /// Build from a trace and summary fields.
    pub fn new(name: impl Into<String>, fields: Vec<(String, f64)>, trace: TrainTrace) -> Self {
        Golden {
            name: name.into(),
            fields,
            trace,
        }
    }

    /// Serialise to the line-oriented JSON golden format.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"name\": \"{}\",", self.name);
        s.push_str("  \"fields\": [\n");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            let comma = if i + 1 < self.fields.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "    {{\"key\": \"{k}\", \"value\": {v:?}, \"bits\": \"{:016x}\"}}{comma}",
                v.to_bits()
            );
        }
        s.push_str("  ],\n");
        s.push_str("  \"epochs\": [\n");
        for (i, r) in self.trace.records.iter().enumerate() {
            let comma = if i + 1 < self.trace.records.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(
                s,
                "    {{\"epoch\": {}, \"loss\": {:?}, \"loss_bits\": \"{:016x}\", \"val\": {:?}, \"val_bits\": \"{:016x}\"}}{comma}",
                r.epoch,
                r.loss,
                r.loss.to_bits(),
                r.val,
                r.val.to_bits()
            );
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parse the golden format. Bits fields are authoritative; `value`
    /// fields are ignored.
    pub fn from_text(text: &str) -> Result<Golden, String> {
        let mut name = String::new();
        let mut fields = Vec::new();
        let mut trace = TrainTrace::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            let at = |e: &str| format!("golden parse error at line {}: {e}", lineno + 1);
            if line.starts_with("\"name\":") {
                name = extract_string(line, "name").ok_or_else(|| at("bad name"))?;
            } else if line.contains("\"key\":") {
                let key = extract_string(line, "key").ok_or_else(|| at("bad key"))?;
                let bits = extract_bits(line, "bits").ok_or_else(|| at("bad bits"))?;
                fields.push((key, f64::from_bits(bits)));
            } else if line.contains("\"epoch\":") {
                let epoch = extract_usize(line, "epoch").ok_or_else(|| at("bad epoch"))?;
                let loss = extract_bits(line, "loss_bits").ok_or_else(|| at("bad loss_bits"))?;
                let val = extract_bits(line, "val_bits").ok_or_else(|| at("bad val_bits"))?;
                trace.push(epoch, f64::from_bits(loss), f64::from_bits(val));
            }
        }
        if name.is_empty() {
            return Err("golden parse error: missing \"name\"".into());
        }
        Ok(Golden {
            name,
            fields,
            trace,
        })
    }

    /// Compare `self` (the expected golden) against an actual run.
    /// `Err` carries a human-readable report including a unified diff.
    pub fn compare(&self, actual: &Golden, mode: Compare) -> Result<(), String> {
        let mut problems = Vec::new();
        if self.name != actual.name {
            problems.push(format!(
                "name: expected {:?}, got {:?}",
                self.name, actual.name
            ));
        }
        if self.fields.len() != actual.fields.len() {
            problems.push(format!(
                "field count: expected {}, got {}",
                self.fields.len(),
                actual.fields.len()
            ));
        }
        for ((ek, ev), (ak, av)) in self.fields.iter().zip(&actual.fields) {
            if ek != ak {
                problems.push(format!("field order: expected {ek:?}, got {ak:?}"));
            } else if !scalar_eq(*ev, *av, mode) {
                problems.push(format!(
                    "field {ek}: expected {ev:?} ({:016x}), got {av:?} ({:016x})",
                    ev.to_bits(),
                    av.to_bits()
                ));
            }
        }
        if self.trace.len() != actual.trace.len() {
            problems.push(format!(
                "epoch count: expected {}, got {}",
                self.trace.len(),
                actual.trace.len()
            ));
        }
        for (e, a) in self.trace.records.iter().zip(&actual.trace.records) {
            if e.epoch != a.epoch {
                problems.push(format!(
                    "epoch index: expected {}, got {}",
                    e.epoch, a.epoch
                ));
                break;
            }
            if !scalar_eq(e.loss, a.loss, mode) {
                problems.push(format!(
                    "epoch {} loss: expected {:?} ({:016x}), got {:?} ({:016x})",
                    e.epoch,
                    e.loss,
                    e.loss.to_bits(),
                    a.loss,
                    a.loss.to_bits()
                ));
            }
            if !scalar_eq(e.val, a.val, mode) {
                problems.push(format!(
                    "epoch {} val: expected {:?} ({:016x}), got {:?} ({:016x})",
                    e.epoch,
                    e.val,
                    e.val.to_bits(),
                    a.val,
                    a.val.to_bits()
                ));
            }
        }
        if problems.is_empty() {
            return Ok(());
        }
        let detail = problems.join("\n  ");
        let diff = unified_diff(&self.to_text(), &actual.to_text());
        Err(format!(
            "golden mismatch for {:?} ({} problems):\n  {detail}\n{diff}\n\
             (set MG_UPDATE_GOLDENS=1 to accept the new trace)",
            self.name,
            problems.len()
        ))
    }
}

fn scalar_eq(e: f64, a: f64, mode: Compare) -> bool {
    match mode {
        Compare::Bitwise => e.to_bits() == a.to_bits(),
        Compare::Tolerance(tol) => {
            if !e.is_finite() || !a.is_finite() {
                return e.to_bits() == a.to_bits();
            }
            (e - a).abs() <= tol * e.abs().max(a.abs()).max(1.0)
        }
    }
}

/// Compare an actual run against the golden stored at `path`, following
/// the update workflow: with `MG_UPDATE_GOLDENS=1` the file is rewritten
/// and the check passes; otherwise a missing file is an error and an
/// existing file is compared under `mode`.
pub fn check_against_file(path: &Path, actual: &Golden, mode: Compare) -> Result<(), String> {
    if std::env::var_os("MG_UPDATE_GOLDENS").is_some_and(|v| v == "1") {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        }
        std::fs::write(path, actual.to_text())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        return Ok(());
    }
    let text = std::fs::read_to_string(path).map_err(|e| {
        format!(
            "missing golden {} ({e}); run with MG_UPDATE_GOLDENS=1 to generate it",
            path.display()
        )
    })?;
    Golden::from_text(&text)?.compare(actual, mode)
}

fn extract_string(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\": \"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

fn extract_bits(line: &str, key: &str) -> Option<u64> {
    u64::from_str_radix(&extract_string(line, key)?, 16).ok()
}

fn extract_usize(line: &str, key: &str) -> Option<usize> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..]
        .find(|c: char| !c.is_ascii_digit())
        .map_or(line.len(), |i| i + start);
    line[start..end].parse().ok()
}

/// A minimal unified diff: shared prefix/suffix lines collapse into one
/// hunk of `-` expected / `+` actual lines with three lines of context.
pub fn unified_diff(expected: &str, actual: &str) -> String {
    let e: Vec<&str> = expected.lines().collect();
    let a: Vec<&str> = actual.lines().collect();
    let mut pre = 0;
    while pre < e.len() && pre < a.len() && e[pre] == a[pre] {
        pre += 1;
    }
    let mut post = 0;
    while post < e.len() - pre
        && post < a.len() - pre
        && e[e.len() - 1 - post] == a[a.len() - 1 - post]
    {
        post += 1;
    }
    if pre == e.len() && pre == a.len() {
        return String::from("(no textual difference)");
    }
    let ctx = 3usize;
    let from = pre.saturating_sub(ctx);
    let mut out = String::from("--- expected\n+++ actual\n");
    let _ = writeln!(
        out,
        "@@ -{},{} +{},{} @@",
        from + 1,
        e.len() - post - from,
        from + 1,
        a.len() - post - from
    );
    for line in &e[from..pre] {
        let _ = writeln!(out, " {line}");
    }
    for line in &e[pre..e.len() - post] {
        let _ = writeln!(out, "-{line}");
    }
    for line in &a[pre..a.len() - post] {
        let _ = writeln!(out, "+{line}");
    }
    let until = (e.len() - post + ctx).min(e.len());
    for line in &e[e.len() - post..until] {
        let _ = writeln!(out, " {line}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Golden {
        let mut t = TrainTrace::new();
        t.push(0, 1.5, 0.5);
        t.push(1, 0.75, 0.625);
        Golden::new(
            "sample",
            vec![("test_metric".into(), 0.875), ("epochs_run".into(), 2.0)],
            t,
        )
    }

    #[test]
    fn roundtrip_is_bitwise_exact() {
        let g = sample();
        let parsed = Golden::from_text(&g.to_text()).unwrap();
        assert_eq!(g, parsed);
        assert!(g.compare(&parsed, Compare::Bitwise).is_ok());
    }

    #[test]
    fn roundtrip_survives_awkward_values() {
        let mut t = TrainTrace::new();
        t.push(0, 1.0 / 3.0, f64::MIN_POSITIVE);
        t.push(1, -0.0, 1e300);
        let g = Golden::new("awkward", vec![("x".into(), f64::EPSILON)], t);
        let parsed = Golden::from_text(&g.to_text()).unwrap();
        assert!(g.compare(&parsed, Compare::Bitwise).is_ok());
    }

    #[test]
    fn bitwise_compare_catches_one_ulp() {
        let g = sample();
        let mut other = g.clone();
        other.trace.records[1].loss = f64::from_bits(other.trace.records[1].loss.to_bits() + 1);
        let err = g.compare(&other, Compare::Bitwise).unwrap_err();
        assert!(err.contains("epoch 1 loss"), "{err}");
        assert!(err.contains("--- expected"), "diff missing: {err}");
        // ...but a tolerance compare accepts it
        assert!(g.compare(&other, Compare::Tolerance(1e-9)).is_ok());
    }

    #[test]
    fn tolerance_compare_catches_large_drift() {
        let g = sample();
        let mut other = g.clone();
        other.fields[0].1 = 0.5;
        let err = g.compare(&other, Compare::Tolerance(1e-6)).unwrap_err();
        assert!(err.contains("test_metric"), "{err}");
    }

    #[test]
    fn epoch_count_mismatch_is_reported() {
        let g = sample();
        let mut other = g.clone();
        other.trace.records.pop();
        let err = g.compare(&other, Compare::Bitwise).unwrap_err();
        assert!(err.contains("epoch count"), "{err}");
    }

    #[test]
    fn unified_diff_marks_changed_lines() {
        let d = unified_diff("a\nb\nc\n", "a\nB\nc\n");
        assert!(d.contains("-b"), "{d}");
        assert!(d.contains("+B"), "{d}");
        assert!(d.contains(" a"), "{d}");
    }
}

//! mg-verify: the verification harness for the AdamGNN reproduction.
//!
//! Four pillars, each with its machinery here and its tests at the repo
//! root (`tests/verify_*.rs`):
//!
//! 1. **Model-level gradient audit** ([`gradaudit`]) — the whole
//!    objective (task + γ·L_KL + δ·L_R) as one scalar function of all
//!    parameters, central-differenced on a sampled subset, plus a
//!    decomposition-consistency check that catches coherent bugs (e.g. a
//!    sign flip) gradcheck alone cannot see.
//! 2. **Metamorphic invariants** ([`metamorphic`]) — node-id permutation
//!    must permute embeddings and leave every loss term and readout
//!    stable; unpooling must route rows back to their owners.
//! 3. **Golden-trace regression** ([`golden`]) — seeded training runs
//!    pinned as checked-in per-epoch traces with IEEE-754 bits;
//!    `MG_UPDATE_GOLDENS=1` regenerates, failures print a unified diff.
//! 4. **Differential serial-vs-parallel fuzzing** ([`fuzz`]) — the same
//!    seeded runs must be bit-identical across the serial build and
//!    every parallel pool width.

pub mod fuzz;
pub mod golden;
pub mod gradaudit;
pub mod metamorphic;

#[cfg(feature = "parallel")]
pub use fuzz::with_threads;
pub use fuzz::{
    assert_traces_bitwise, goldens_dir, graph_cls_run, link_pred_run, node_cls_run,
    sampled_node_cls_run, verify_cfg,
};
pub use golden::{check_against_file, unified_diff, Compare, Golden};
pub use gradaudit::{audit_node_model, AuditConfig, AuditReport};
pub use metamorphic::{
    induced_coarse_perm, invert, map_ids, max_row_mapped_diff, permute_rows, permute_topology,
    pooling_structures_match, random_permutation,
};

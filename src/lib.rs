//! Umbrella crate re-exporting the AdamGNN reproduction workspace for examples and integration tests.
pub use adamgnn_core as core;
pub use mg_ckpt as ckpt;
pub use mg_data as data;
pub use mg_eval as eval;
pub use mg_graph as graph;
pub use mg_nn as nn;
pub use mg_tensor as tensor;
pub use mg_verify as verify;
